package compiler

import (
	"testing"

	"scaledeep/internal/arch"
	"scaledeep/internal/dnn"
	"scaledeep/internal/isa"
	"scaledeep/internal/sim"
	"scaledeep/internal/tensor"
)

// testChip is a small 3-row chip with enough columns and capacity for the
// unit-test networks.
func testChip(cols int) arch.ChipConfig {
	return arch.ChipConfig{
		Kind: arch.ConvLayerChip,
		Rows: 3, Cols: cols,
		CompHeavy:  arch.CompHeavyConfig{ArrayRows: 4, ArrayCols: 2, Lanes: 2},
		MemHeavy:   arch.MemHeavyConfig{CapacityKB: 256, NumSFU: 8, TrackerSlots: 64, TrackQueueDepth: 8},
		ExtMemGBps: 150, CompMemGBps: 24, MemMemGBps: 36,
	}
}

// convPoolFCNet is the canonical small test network: conv+relu, maxpool,
// conv+tanh, FC. No softmax — the golden-output error is injected at the FC
// output, as on the hardware.
func convPoolFCNet() *dnn.Network {
	b := dnn.NewBuilder("testnet")
	in := b.Input(3, 8, 8)
	c1 := b.Conv(in, "c1", 4, 3, 1, 1, tensor.ActReLU)
	p1 := b.MaxPool(c1, "p1", 2, 2)
	c2 := b.Conv(p1, "c2", 6, 3, 1, 1, tensor.ActTanh)
	f1 := b.FC(c2, "f1", 5, tensor.ActNone)
	_ = f1
	return b.Build()
}

func TestMappingInvariants(t *testing.T) {
	net := convPoolFCNet()
	chip := testChip(8)
	m, err := Map(net, chip)
	if err != nil {
		t.Fatal(err)
	}
	mapped := m.MappedLayers()
	if len(mapped) != 4 {
		t.Fatalf("mapped %d layers", len(mapped))
	}
	// All chip columns allocated, contiguously and in order.
	next := 0
	for _, lm := range mapped {
		if len(lm.Cols) < lm.MinCols || len(lm.Cols) < 1 {
			t.Errorf("%s got %d cols, min %d", lm.Layer.Name, len(lm.Cols), lm.MinCols)
		}
		for _, c := range lm.Cols {
			if c != next {
				t.Fatalf("%s columns not contiguous: %v", lm.Layer.Name, lm.Cols)
			}
			next++
		}
	}
	if next != chip.Cols {
		t.Errorf("allocated %d of %d columns", next, chip.Cols)
	}
	// Load balancing sends the most columns to the heaviest layer.
	heaviest, most := "", 0
	var heaviestFLOPs int64
	for _, lm := range mapped {
		if len(lm.Cols) > most {
			most, heaviest = len(lm.Cols), lm.Layer.Name
		}
		if lm.TrainFLOPs > heaviestFLOPs {
			heaviestFLOPs = lm.TrainFLOPs
		}
	}
	for _, lm := range mapped {
		if lm.TrainFLOPs == heaviestFLOPs && lm.Layer.Name != heaviest && len(lm.Cols) < most {
			t.Errorf("heaviest layer %s did not get the most columns", lm.Layer.Name)
		}
	}
	// Every feature has a home on a valid tile.
	for _, lm := range mapped {
		if len(lm.Homes) == 0 {
			t.Errorf("%s has no feature homes", lm.Layer.Name)
		}
		for _, h := range lm.Homes {
			if h.Row < 0 || h.Row >= chip.Rows || h.MCol < 0 || h.MCol > chip.Cols {
				t.Errorf("%s home %v out of range", lm.Layer.Name, h)
			}
		}
	}
}

func TestMapRejectsUnsupported(t *testing.T) {
	chip := testChip(8)
	// DAG nets are rejected by the functional backend.
	b := dnn.NewBuilder("dag")
	in := b.Input(4, 6, 6)
	c1 := b.Conv(in, "c1", 4, 3, 1, 1, tensor.ActReLU)
	add := b.Add("res", in, c1)
	bb := b.Softmax(add).Build()
	if _, err := Map(bb, chip); err == nil {
		t.Error("DAG accepted")
	}
	// Grouped conv rejected.
	b2 := dnn.NewBuilder("grouped")
	in2 := b2.Input(4, 6, 6)
	g := b2.ConvG(in2, "g", 4, 3, 1, 1, 2, tensor.ActReLU)
	n2 := b2.Softmax(g).Build()
	if _, err := Map(n2, chip); err == nil {
		t.Error("grouped conv accepted")
	}
	// Non-invertible stride geometry rejected.
	b3 := dnn.NewBuilder("badstride")
	in3 := b3.Input(1, 8, 8)
	c3 := b3.Conv(in3, "c", 2, 3, 2, 0, tensor.ActReLU) // (8-3)%2 != 0
	n3 := b3.Softmax(c3).Build()
	if _, err := Map(n3, chip); err == nil {
		t.Error("non-invertible conv accepted")
	}
}

func TestGeneratedProgramsAreValid(t *testing.T) {
	net := convPoolFCNet()
	c, err := Compile(net, testChip(8), Options{Minibatch: 2, Iterations: 1, Training: true, LR: 0.015625})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Programs) == 0 {
		t.Fatal("no programs")
	}
	sawConv, sawTrack, sawMM := false, false, false
	for _, p := range c.Programs {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Tile, err)
		}
		for _, ins := range p.Instrs {
			switch ins.Op {
			case isa.NDCONV:
				sawConv = true
			case isa.DMAMEMTRACK, isa.MEMTRACK:
				sawTrack = true
			case isa.MATMUL:
				sawMM = true
			}
		}
		// Round-trip through the assembler, as Fig. 13's listing implies.
		text := isa.Disassemble(p)
		if _, err := isa.Assemble(p.Tile, text); err != nil {
			t.Fatalf("disassembly of %s does not re-assemble: %v", p.Tile, err)
		}
	}
	if !sawConv || !sawTrack || !sawMM {
		t.Errorf("instruction coverage: conv=%v track=%v matmul=%v", sawConv, sawTrack, sawMM)
	}
	if len(c.Trackers) == 0 {
		t.Error("no trackers in manifest")
	}
}

// runSim compiles, installs and runs a network on the functional simulator.
func runSim(t *testing.T, net *dnn.Network, chip arch.ChipConfig, opts Options,
	e *dnn.Executor, inputs, golden []*tensor.Tensor) (*Compiled, *sim.Machine, sim.Stats) {
	t.Helper()
	c, err := Compile(net, chip, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(chip, arch.Single, true)
	if err := c.Install(m); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadWeights(m, e); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadInputs(m, inputs); err != nil {
		t.Fatal(err)
	}
	if opts.Training {
		if err := c.LoadGolden(m, golden); err != nil {
			t.Fatal(err)
		}
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return c, m, st
}

func mkInputs(net *dnn.Network, n int, seed uint64) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	in := net.Layers[0].Out
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = tensor.New(in.C, in.H, in.W)
		rng.FillUniform(out[i], 1)
	}
	return out
}

func TestFPEquivalenceWithExecutor(t *testing.T) {
	net := convPoolFCNet()
	e := dnn.NewExecutor(net, 42)
	e.NoBias = true
	inputs := mkInputs(net, 3, 7)
	opts := Options{Minibatch: 3, Iterations: 1, Training: false}
	c, m, st := runSim(t, net, testChip(8), opts, e, inputs, nil)
	for i, in := range inputs {
		want := e.Forward(in)
		got := c.ReadOutput(m, i)
		diff := tensor.MaxAbsDiff(tensor.FromSlice(got, len(got)), tensor.FromSlice(want.Data, want.Len()))
		if diff > 1e-4 {
			t.Errorf("image %d: sim vs executor FP differ by %v\nsim  %v\nwant %v", i, diff, got, want.Data)
		}
	}
	if st.Cycles <= 0 || st.FLOPs <= 0 {
		t.Errorf("stats empty: %v", st)
	}
}

var itersOverride = 3

func TestTrainingEquivalenceWithExecutor(t *testing.T) {
	net := convPoolFCNet()
	const mb = 2
	iters := itersOverride
	const lr = float32(0.015625) // exact in the WUPDATE fixed-point format

	inputs := mkInputs(net, mb, 11)
	golden := make([]*tensor.Tensor, mb)
	rng := tensor.NewRNG(13)
	for i := range golden {
		golden[i] = tensor.New(5)
		rng.FillUniform(golden[i], 1)
	}

	// Reference run.
	ref := dnn.NewExecutor(net, 42)
	ref.NoBias = true
	for it := 0; it < iters; it++ {
		for i, in := range inputs {
			out := ref.Forward(in)
			grad := out.Clone()
			tensor.Sub(grad, out, golden[i])
			ref.BackwardFrom(grad)
		}
		ref.Step(lr, 1) // the hardware update applies lr to the summed gradient
	}

	// Simulator run from identical initial weights.
	simInit := dnn.NewExecutor(net, 42)
	simInit.NoBias = true
	opts := Options{Minibatch: mb, Iterations: iters, Training: true, LR: lr}
	c, m, st := runSim(t, net, testChip(8), opts, simInit, inputs, golden)

	// Weights of every weighted layer must match the reference within float
	// accumulation tolerance.
	for _, l := range net.Layers {
		if !l.HasWeights() {
			continue
		}
		got := c.ReadWeights(m, l.Index)
		want := ref.Weights[l.Index]
		diff := tensor.MaxAbsDiff(got, want)
		if diff > 1e-3 {
			t.Errorf("layer %s trained weights differ by %v", l.Name, diff)
		}
	}
	// And the last iteration's outputs must match the reference forward pass
	// with the pre-update weights. Recompute reference outputs per image of
	// the final iteration.
	refCheck := dnn.NewExecutor(net, 42)
	refCheck.NoBias = true
	for it := 0; it < iters; it++ {
		for i, in := range inputs {
			out := refCheck.Forward(in)
			if it == iters-1 {
				got := c.ReadOutput(m, i)
				diff := tensor.MaxAbsDiff(tensor.FromSlice(got, len(got)), tensor.FromSlice(out.Data, out.Len()))
				if diff > 1e-3 {
					t.Errorf("final-iteration output %d differs by %v", i, diff)
				}
			}
			grad := out.Clone()
			tensor.Sub(grad, out, golden[i])
			refCheck.BackwardFrom(grad)
		}
		refCheck.Step(lr, 1)
	}
	if st.NACKs < 0 {
		t.Error("negative NACKs")
	}
}

func TestTrainingReducesErrorOnSim(t *testing.T) {
	// End-to-end: multiple iterations of hardware training must shrink the
	// output error against the golden vector.
	b := dnn.NewBuilder("tiny")
	in := b.Input(2, 6, 6)
	c1 := b.Conv(in, "c1", 3, 3, 1, 1, tensor.ActTanh)
	f1 := b.FC(c1, "f1", 4, tensor.ActNone)
	_ = f1
	net := b.Build()

	e := dnn.NewExecutor(net, 5)
	e.NoBias = true
	inputs := mkInputs(net, 1, 17)
	golden := []*tensor.Tensor{tensor.FromSlice([]float32{1, -1, 0.5, 0}, 4)}

	before := func() []float32 {
		opts := Options{Minibatch: 1, Iterations: 1, Training: false}
		c, m, _ := runSim(t, net, testChip(6), opts, e, inputs, nil)
		return c.ReadOutput(m, 0)
	}()

	opts := Options{Minibatch: 1, Iterations: 12, Training: true, LR: 0.03125}
	c, m, _ := runSim(t, net, testChip(6), opts, e, inputs, golden)
	after := c.ReadOutput(m, 0)

	errOf := func(out []float32) float64 {
		var s float64
		for i, v := range out {
			d := float64(v - golden[0].Data[i])
			s += d * d
		}
		return s
	}
	if errOf(after) > errOf(before)*0.6 {
		t.Errorf("training did not reduce error: before %v after %v", errOf(before), errOf(after))
	}
}

func TestEvalModeUsesAllTileSetsForForwardWork(t *testing.T) {
	// §6.1: during evaluation the BP/WG CompHeavy tiles also perform FP —
	// eval compilation spreads forward batches over all three tile sets,
	// and none of the emitted programs contain backward or update work.
	net := convPoolFCNet()
	c, err := Compile(net, testChip(8), Options{Minibatch: 1, Training: false})
	if err != nil {
		t.Fatal(err)
	}
	sawBP, sawWG := false, false
	for k, p := range c.Programs {
		if k.Step == sim.StepBP {
			sawBP = true
		}
		if k.Step == sim.StepWG {
			sawWG = true
		}
		for _, ins := range p.Instrs {
			switch ins.Op {
			case isa.WUPDATE, isa.VECMUL, isa.NDUPSAMP:
				t.Fatalf("eval program %v contains backward op %v", k, ins.Op)
			}
		}
	}
	if !sawBP || !sawWG {
		t.Errorf("eval compile left tile sets idle (BP=%v WG=%v)", sawBP, sawWG)
	}
}

func TestEvalFasterThanSingleSetWouldBe(t *testing.T) {
	// With forward batches spread over three tile sets, evaluating a
	// minibatch should take meaningfully fewer cycles than the same forward
	// work inside a training compile (which reserves BP/WG tiles for
	// backward work and so runs FP on one set).
	net := convPoolFCNet()
	chip := testChip(8)
	e := dnn.NewExecutor(net, 3)
	e.NoBias = true
	inputs := mkInputs(net, 2, 5)
	_, _, evalStats := runSim(t, net, chip, Options{Minibatch: 2, Training: false}, e, inputs, nil)

	golden := []*tensor.Tensor{tensor.New(5), tensor.New(5)}
	tensor.NewRNG(3).FillUniform(golden[0], 1)
	tensor.NewRNG(4).FillUniform(golden[1], 1)
	_, _, trainStats := runSim(t, net, chip,
		Options{Minibatch: 2, Training: true, LR: 0.0625}, e, inputs, golden)
	if evalStats.Cycles >= trainStats.Cycles {
		t.Errorf("eval (%d cycles) should beat training (%d cycles)", evalStats.Cycles, trainStats.Cycles)
	}
	t.Logf("eval %d cycles vs training %d cycles", evalStats.Cycles, trainStats.Cycles)
}

func TestCompileDeterminism(t *testing.T) {
	net := convPoolFCNet()
	opts := Options{Minibatch: 2, Iterations: 1, Training: true, LR: 0.0625}
	a, err := Compile(net, testChip(8), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(net, testChip(8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Programs) != len(b.Programs) {
		t.Fatal("program sets differ")
	}
	for k, pa := range a.Programs {
		pb := b.Programs[k]
		if pb == nil || isa.Disassemble(pa) != isa.Disassemble(pb) {
			t.Fatalf("program %v not deterministic", k)
		}
	}
}

func TestPureConvChain(t *testing.T) {
	// A conv-only network exercises the head on a conv layer.
	b := dnn.NewBuilder("convs")
	in := b.Input(2, 5, 5)
	c1 := b.Conv(in, "c1", 3, 3, 1, 1, tensor.ActReLU)
	c2 := b.Conv(c1, "c2", 2, 3, 1, 1, tensor.ActNone)
	_ = c2
	net := b.Build()
	e := dnn.NewExecutor(net, 9)
	e.NoBias = true
	inputs := mkInputs(net, 2, 23)
	golden := []*tensor.Tensor{tensor.New(2 * 5 * 5), tensor.New(2 * 5 * 5)}
	tensor.NewRNG(29).FillUniform(golden[0], 1)
	tensor.NewRNG(31).FillUniform(golden[1], 1)

	ref := dnn.NewExecutor(net, 9)
	ref.NoBias = true
	for i, input := range inputs {
		out := ref.Forward(input)
		grad := out.Clone()
		tensor.Sub(grad, out, golden[i])
		ref.BackwardFrom(grad)
	}
	ref.Step(0.0625, 1)

	opts := Options{Minibatch: 2, Iterations: 1, Training: true, LR: 0.0625}
	c, m, _ := runSim(t, net, testChip(4), opts, e, inputs, golden)
	for _, l := range net.Layers {
		if !l.HasWeights() {
			continue
		}
		if diff := tensor.MaxAbsDiff(c.ReadWeights(m, l.Index), ref.Weights[l.Index]); diff > 1e-3 {
			t.Errorf("layer %s weights differ by %v", l.Name, diff)
		}
	}
}

func TestFCOnlyNetwork(t *testing.T) {
	b := dnn.NewBuilder("mlp")
	in := b.Input(1, 1, 12)
	f1 := b.FC(in, "f1", 8, tensor.ActSigmoid)
	f2 := b.FC(f1, "f2", 3, tensor.ActNone)
	_ = f2
	net := b.Build()
	e := dnn.NewExecutor(net, 3)
	e.NoBias = true
	inputs := mkInputs(net, 2, 37)
	opts := Options{Minibatch: 2, Iterations: 1, Training: false}
	c, m, _ := runSim(t, net, testChip(4), opts, e, inputs, nil)
	for i, in := range inputs {
		want := e.Forward(in)
		got := c.ReadOutput(m, i)
		if diff := tensor.MaxAbsDiff(tensor.FromSlice(got, len(got)), tensor.FromSlice(want.Data, want.Len())); diff > 1e-4 {
			t.Errorf("image %d FC-only outputs differ by %v", i, diff)
		}
	}
}

func TestAvgPoolNetwork(t *testing.T) {
	b := dnn.NewBuilder("avgnet")
	in := b.Input(2, 6, 6)
	c1 := b.Conv(in, "c1", 2, 3, 1, 1, tensor.ActReLU)
	p1 := b.AvgPool(c1, "p1", 2, 2)
	f1 := b.FC(p1, "f1", 3, tensor.ActNone)
	_ = f1
	net := b.Build()
	e := dnn.NewExecutor(net, 19)
	e.NoBias = true
	inputs := mkInputs(net, 1, 41)
	golden := []*tensor.Tensor{tensor.FromSlice([]float32{0.5, -0.5, 0}, 3)}

	ref := dnn.NewExecutor(net, 19)
	ref.NoBias = true
	out := ref.Forward(inputs[0])
	grad := out.Clone()
	tensor.Sub(grad, out, golden[0])
	ref.BackwardFrom(grad)
	ref.Step(0.0625, 1)

	opts := Options{Minibatch: 1, Iterations: 1, Training: true, LR: 0.0625}
	c, m, _ := runSim(t, net, testChip(6), opts, e, inputs, golden)
	for _, l := range net.Layers {
		if !l.HasWeights() {
			continue
		}
		if diff := tensor.MaxAbsDiff(c.ReadWeights(m, l.Index), ref.Weights[l.Index]); diff > 1e-3 {
			t.Errorf("layer %s weights differ by %v (avg pool BP path)", l.Name, diff)
		}
	}
}

func TestStridedConvTraining(t *testing.T) {
	// Stride-2 convolution exercises the transposed-conv BP mode.
	b := dnn.NewBuilder("strided")
	in := b.Input(2, 7, 7)
	c1 := b.Conv(in, "c1", 3, 3, 2, 0, tensor.ActReLU) // (7-3)%2==0 → 3x3 out
	f1 := b.FC(c1, "f1", 2, tensor.ActNone)
	_ = f1
	net := b.Build()
	e := dnn.NewExecutor(net, 21)
	e.NoBias = true
	inputs := mkInputs(net, 1, 43)
	golden := []*tensor.Tensor{tensor.FromSlice([]float32{1, -1}, 2)}

	ref := dnn.NewExecutor(net, 21)
	ref.NoBias = true
	out := ref.Forward(inputs[0])
	grad := out.Clone()
	tensor.Sub(grad, out, golden[0])
	ref.BackwardFrom(grad)
	ref.Step(0.0625, 1)

	opts := Options{Minibatch: 1, Iterations: 1, Training: true, LR: 0.0625}
	c, m, _ := runSim(t, net, testChip(4), opts, e, inputs, golden)
	for _, l := range net.Layers {
		if !l.HasWeights() {
			continue
		}
		if diff := tensor.MaxAbsDiff(c.ReadWeights(m, l.Index), ref.Weights[l.Index]); diff > 1e-3 {
			t.Errorf("layer %s weights differ by %v (strided BP)", l.Name, diff)
		}
	}
}
