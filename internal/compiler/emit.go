package compiler

import (
	"fmt"

	"scaledeep/internal/isa"
	"scaledeep/internal/sim"
)

// This file provides the code-generation substrate: a per-tile scratchpad
// allocator, an instruction emitter, and an access ledger from which the
// data-flow tracker manifest (§3.2.4) is derived automatically — each
// tracked range's NumUpdates/NumReads are counted from the ops the generator
// actually emitted, so the synchronization contract cannot drift from the
// code.

// regionKind selects the tracker-generation policy of a region.
type regionKind int

const (
	kindData    regionKind = iota // data regions (features, errors, staging)
	kindWeight                    // per-iteration generation, preloaded
	kindGrad                      // per-iteration generation (weight gradients)
	kindPartial                   // fine-grained generations (partial sums)
	kindBarrier                   // iteration barrier token
)

// region is an allocated scratchpad range on one MemHeavy tile.
type region struct {
	tile int // absolute MemHeavy tile index (ABI: index = MCol*Rows + Row)
	addr int64
	size int64
	name string
	kind regionKind
	// gens is the number of tracker generations per training iteration
	// (1 for per-image feature copies, #batches×M for partial sums, M for
	// shared staging buffers).
	gens int

	// access ledger
	tiles          map[progKey]bool // comp tiles touching the region
	imgReads       int              // reads emitted in the per-image section
	imgWrites      int
	batchReads     int // reads emitted in the per-batch section
	batchWrites    int
	prologueWrites int
}

// allocator hands out scratchpad ranges per MemHeavy tile.
type allocator struct {
	rows     int
	capacity int64
	next     []int64
	regions  []*region
}

func newAllocator(rows, totalMemTiles int, capacityElems int64) *allocator {
	return &allocator{rows: rows, capacity: capacityElems, next: make([]int64, totalMemTiles)}
}

// tileIndex maps a TileCoord to the ABI MemHeavy tile index.
func (a *allocator) tileIndex(tc TileCoord) int { return tc.MCol*a.rows + tc.Row }

func (a *allocator) alloc(tc TileCoord, size int64, name string, kind regionKind) *region {
	t := a.tileIndex(tc)
	if a.next[t]+size > a.capacity {
		panic(fmt.Sprintf("compiler: MemHeavy tile (r%d,m%d) over capacity: %d + %d > %d (%s)",
			tc.Row, tc.MCol, a.next[t], size, a.capacity, name))
	}
	r := &region{tile: t, addr: a.next[t], size: size, name: name, kind: kind, tiles: map[progKey]bool{}}
	a.next[t] += size
	a.regions = append(a.regions, r)
	return r
}

// section marks which program phase ops are being emitted in.
type section int

const (
	secPrologue section = iota
	secIter             // per-iteration body: all minibatch images, unrolled
	secBatch
)

// progKey identifies one CompHeavy tile's program.
type progKey struct {
	Row, CCol int
	Step      sim.Step
}

// Reserved registers of the generated calling convention.
const (
	regIter    isa.Reg = 1 // training-iteration counter
	regImg     isa.Reg = 2 // image counter within the minibatch
	regInOff   isa.Reg = 3 // external-memory offset of the current input image
	regGldOff  isa.Reg = 4 // external-memory offset of the current golden output
	regScratch         = 8 // first scratch register for operand staging
)

// opr is an instruction operand: either a compile-time constant or one of
// the reserved registers (used for per-image external-memory offsets).
type opr struct {
	val   int64
	reg   isa.Reg
	isReg bool
}

// C makes a constant operand.
func C(v int64) opr { return opr{val: v} }

// R makes a register operand.
func R(r isa.Reg) opr { return opr{reg: r, isReg: true} }

// tileProgram accumulates one tile's instructions per section, with a
// parallel per-instruction layer tag (network layer index, or untaggedLayer
// for control/synchronization scaffolding).
type tileProgram struct {
	prologue []isa.Instr
	image    []isa.Instr
	batch    []isa.Instr

	prologueTags []int
	imageTags    []int
	batchTags    []int
}

// untaggedLayer marks instructions that belong to no network layer (loop
// control, barriers, tracker arming).
const untaggedLayer = -1

// emitter builds all tile programs and the access ledger.
type emitter struct {
	alloc *allocator
	progs map[progKey]*tileProgram
	sec   section
	layer int // layer tag applied to emitted instructions
}

func newEmitter(a *allocator) *emitter {
	return &emitter{alloc: a, progs: map[progKey]*tileProgram{}, layer: untaggedLayer}
}

// setLayer switches the layer tag for subsequently emitted instructions.
func (e *emitter) setLayer(idx int) { e.layer = idx }

// tagBuf returns the tag slice parallel to the current section's buffer.
func (e *emitter) tagBuf(k progKey) *[]int {
	tp := e.at(k)
	switch e.sec {
	case secPrologue:
		return &tp.prologueTags
	case secIter:
		return &tp.imageTags
	default:
		return &tp.batchTags
	}
}

// tag appends n copies of the current layer tag for tile k's section.
func (e *emitter) tag(k progKey, n int) {
	tags := e.tagBuf(k)
	for i := 0; i < n; i++ {
		*tags = append(*tags, e.layer)
	}
}

func (e *emitter) at(k progKey) *tileProgram {
	tp := e.progs[k]
	if tp == nil {
		tp = &tileProgram{}
		e.progs[k] = tp
	}
	return tp
}

func (e *emitter) buf(k progKey) *[]isa.Instr {
	tp := e.at(k)
	switch e.sec {
	case secPrologue:
		return &tp.prologue
	case secIter:
		return &tp.image
	default:
		return &tp.batch
	}
}

// touch records an access in the ledger.
func (e *emitter) touch(k progKey, r *region, write bool) {
	if r == nil {
		return
	}
	r.tiles[k] = true
	switch e.sec {
	case secIter:
		if write {
			r.imgWrites++
		} else {
			r.imgReads++
		}
	case secBatch:
		if write {
			r.batchWrites++
		} else {
			r.batchReads++
		}
	case secPrologue:
		if write {
			r.prologueWrites++
		}
	}
}

// rd / wr annotate an op's region accesses for the ledger.
type regAccess struct {
	r     *region
	write bool
}

func rd(r *region) regAccess { return regAccess{r: r} }
func wr(r *region) regAccess { return regAccess{r: r, write: true} }

// op emits one coarse/offload/transfer/track instruction on tile k, staging
// constant operands through scratch registers, and records its accesses.
func (e *emitter) op(k progKey, opcode isa.Opcode, operands []opr, accs ...regAccess) {
	buf := e.buf(k)
	n0 := len(*buf)
	regs := make([]isa.Reg, len(operands))
	next := isa.Reg(regScratch)
	for i, o := range operands {
		if o.isReg {
			regs[i] = o.reg
			continue
		}
		if o.val > 1<<31-1 || o.val < -(1<<31) {
			panic(fmt.Sprintf("compiler: operand %d exceeds immediate range", o.val))
		}
		*buf = append(*buf, isa.Ldri(next, int32(o.val)))
		regs[i] = next
		next++
		if int(next) >= isa.NumRegs {
			panic("compiler: out of scratch registers")
		}
	}
	*buf = append(*buf, isa.WithArgs(opcode, regs...))
	e.tag(k, len(*buf)-n0)
	for _, a := range accs {
		e.touch(k, a.r, a.write)
	}
}

// raw emits scalar instructions verbatim.
func (e *emitter) raw(k progKey, ins ...isa.Instr) {
	buf := e.buf(k)
	*buf = append(*buf, ins...)
	e.tag(k, len(ins))
}

// finalize assembles each tile's program:
//
//	prologue
//	LDRI iter
//	iterLoop: <per-iteration body: all minibatch images, unrolled>
//	<batch section: weight update + iteration barrier>
//	dec iter; BGTZ iterLoop; HALT
//
// and derives the tracker manifest from the ledger, plus a parallel
// per-instruction layer-tag slice for each program (the profiler's
// program→layer binding).
func (e *emitter) finalize(iterations int) (map[progKey]*isa.Program, map[progKey][]int, []sim.TrackerSpec) {
	// Derive trackers first: it also prepends the DMAMEMTRACK arming
	// instructions to program prologues.
	trackers := e.trackerManifest()
	progs := map[progKey]*isa.Program{}
	layerTags := map[progKey][]int{}
	for k, tp := range e.progs {
		var ins []isa.Instr
		var tags []int
		ins = append(ins, tp.prologue...)
		tags = append(tags, tp.prologueTags...)
		ins = append(ins, isa.Ldri(regIter, int32(iterations)))
		tags = append(tags, untaggedLayer)
		iterTop := len(ins)
		ins = append(ins, tp.image...)
		tags = append(tags, tp.imageTags...)
		ins = append(ins, tp.batch...)
		tags = append(tags, tp.batchTags...)
		ins = append(ins, isa.Subri(regIter, regIter, 1))
		ins = append(ins, isa.Bgtz(regIter, int32(iterTop-(len(ins)+1))))
		ins = append(ins, isa.Halt())
		tags = append(tags, untaggedLayer, untaggedLayer, untaggedLayer)
		if len(tags) != len(ins) {
			panic(fmt.Sprintf("compiler: layer tags out of sync on %v: %d tags for %d instrs",
				k, len(tags), len(ins)))
		}
		progs[k] = &isa.Program{
			Tile:   fmt.Sprintf("r%d.c%d.%s", k.Row, k.CCol, k.Step),
			Instrs: ins,
		}
		layerTags[k] = tags
	}
	return progs, layerTags, trackers
}

// trackerManifest derives one TrackerSpec per multi-tile region from the
// ledger. Single-tile regions need no tracker: program order within one
// tile's instruction stream already serializes their accesses. For ISA
// fidelity each tracked region also gets a DMAMEMTRACK instruction in the
// prologue of one touching tile (arming is idempotent; the manifest pre-arm
// exists so no data op can race the arming instruction, §3.2.4).
func (e *emitter) trackerManifest() []sim.TrackerSpec {
	var specs []sim.TrackerSpec
	for _, r := range e.alloc.regions {
		if len(r.tiles) <= 1 {
			continue
		}
		spec := sim.TrackerSpec{MemTile: r.tile, Addr: r.addr, Size: r.size}
		switch r.kind {
		case kindData, kindPartial:
			g := r.gens
			if g <= 0 {
				g = 1
			}
			if r.imgWrites%g != 0 || r.imgReads%g != 0 {
				panic(fmt.Sprintf("compiler: region %s has non-uniform generations (%dW %dR over %d gens)",
					r.name, r.imgWrites, r.imgReads, g))
			}
			spec.NumUpdates = r.imgWrites / g
			spec.NumReads = r.imgReads / g
			if spec.NumUpdates == 0 || spec.NumReads == 0 {
				continue
			}
		case kindWeight:
			// Generation = iteration: 1 write (preload, then WUPDATE) and
			// every read of the iteration. The WUPDATE write is gated on the
			// reads draining, which is exactly the required ordering.
			spec.NumUpdates = 1
			spec.NumReads = r.imgReads + r.batchReads
			spec.Preloaded = true
			if spec.NumReads == 0 {
				continue
			}
		case kindGrad:
			// Generation = iteration: boundary MEMSET + the iteration's
			// accumulations, then the WUPDATE read.
			spec.NumUpdates = r.batchWrites + r.imgWrites
			spec.NumReads = r.batchReads
			if spec.NumReads == 0 {
				continue
			}
		case kindBarrier:
			// Every program writes one token, then reads the full set: no
			// tile enters iteration k+1 before every tile finished k — the
			// minibatch-end weight distribution of §3.3.
			spec.NumUpdates = r.batchWrites
			spec.NumReads = r.batchReads
		}
		specs = append(specs, spec)
		e.emitTrackInstr(r, spec)
	}
	return specs
}

// emitTrackInstr prepends a DMAMEMTRACK to the prologue of the region's
// lowest-ordered touching tile.
func (e *emitter) emitTrackInstr(r *region, spec sim.TrackerSpec) {
	var best progKey
	first := true
	for k := range r.tiles {
		if first || lessKey(k, best) {
			best, first = k, false
		}
	}
	tp := e.at(best)
	var ins []isa.Instr
	regs := []isa.Reg{regScratch, regScratch + 1, regScratch + 2, regScratch + 3, regScratch + 4}
	vals := []int64{isa.AbsTile(spec.MemTile), spec.Addr, spec.Size, int64(spec.NumUpdates), int64(spec.NumReads)}
	for i, v := range vals {
		ins = append(ins, isa.Ldri(regs[i], int32(v)))
	}
	ins = append(ins, isa.WithArgs(isa.DMAMEMTRACK, regs...))
	tp.prologue = append(ins, tp.prologue...)
	pre := make([]int, len(ins), len(ins)+len(tp.prologueTags))
	for i := range pre {
		pre[i] = untaggedLayer
	}
	tp.prologueTags = append(pre, tp.prologueTags...)
}

func lessKey(a, b progKey) bool {
	if a.CCol != b.CCol {
		return a.CCol < b.CCol
	}
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Step < b.Step
}
