package compiler

import (
	"math"
	"reflect"
	"testing"

	"scaledeep/internal/arch"
	"scaledeep/internal/dnn"
	"scaledeep/internal/par"
	"scaledeep/internal/sim"
	"scaledeep/internal/zoo"
)

// timingStatsTiled is timingStats with an explicit tile-worker count.
func timingStatsTiled(t *testing.T, net *dnn.Network, opts Options, tileWorkers int, trace bool) (sim.Stats, string) {
	t.Helper()
	chip := arch.Baseline().Cluster.Conv
	chip.Rows, chip.Cols = 3, 8
	c, err := Compile(net, chip, opts)
	if err != nil {
		t.Fatalf("compile %s: %v", net.Name, err)
	}
	m := sim.NewMachine(chip, arch.Single, false)
	m.SetTileWorkers(tileWorkers)
	if trace {
		m.EnableTrace(1 << 12)
	}
	if err := c.Install(m); err != nil {
		t.Fatalf("install %s: %v", net.Name, err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("run %s (tile-workers=%d): %v", net.Name, tileWorkers, err)
	}
	return st, sim.FormatTrace(m.Trace())
}

// TestTileWorkersInvarianceOnWorkloads is the end-to-end tentpole property
// on real compiled workloads: timing statistics and the recorded trace of
// zoo.MiniVGG and an FC-heavy network must be byte-identical at tile-worker
// counts 1, 2 and 8.
func TestTileWorkersInvarianceOnWorkloads(t *testing.T) {
	prev := par.SetWorkers(8)
	defer par.SetWorkers(prev)
	cases := []struct {
		name string
		net  *dnn.Network
		opts Options
	}{
		{"minivgg-eval", zoo.MiniVGG(), Options{Minibatch: 2, Iterations: 1}},
		{"fcheavy-train", fcHeavyNet(), Options{Minibatch: 2, Iterations: 1, Training: true, LR: 0.0625}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseStats, baseTrace := timingStatsTiled(t, tc.net, tc.opts, 1, true)
			if err := baseStats.CheckAttribution(); err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 8} {
				st, tr := timingStatsTiled(t, tc.net, tc.opts, w, true)
				if !reflect.DeepEqual(baseStats, st) {
					t.Fatalf("stats at tile-workers=%d diverge from serial:\nserial: %+v\nw=%d:  %+v",
						w, baseStats, w, st)
				}
				if tr != baseTrace {
					t.Fatalf("trace at tile-workers=%d diverges from serial", w)
				}
			}
		})
	}
}

// TestFunctionalSimTileWorkerInvariance runs a compiled network through the
// functional simulator at several tile-worker counts and requires the
// outputs to match bit for bit — the same contract the kernel engine gives
// for kernel workers, now for whole-tile partitioning.
func TestFunctionalSimTileWorkerInvariance(t *testing.T) {
	prev := par.SetWorkers(8)
	defer par.SetWorkers(prev)
	net := convPoolFCNet()
	inputs := mkInputs(net, 2, 19)
	opts := Options{Minibatch: 2, Iterations: 1, Training: false}
	chip := testChip(8)

	run := func(workers int) [][]float32 {
		c, err := Compile(net, chip, opts)
		if err != nil {
			t.Fatal(err)
		}
		m := sim.NewMachine(chip, arch.Single, true)
		m.SetTileWorkers(workers)
		if err := c.Install(m); err != nil {
			t.Fatal(err)
		}
		e := dnn.NewExecutor(net, 42)
		e.NoBias = true
		if err := c.LoadWeights(m, e); err != nil {
			t.Fatal(err)
		}
		if err := c.LoadInputs(m, inputs); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		outs := make([][]float32, len(inputs))
		for i := range inputs {
			outs[i] = c.ReadOutput(m, i)
		}
		return outs
	}

	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("tile-workers=%d image %d: %d outputs vs %d", w, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if math.Float32bits(got[i][j]) != math.Float32bits(want[i][j]) {
					t.Fatalf("tile-workers=%d image %d output %d: %v != %v (not bit-identical)",
						w, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}
