package compiler

import (
	"fmt"
	"testing"

	"scaledeep/internal/dnn"
	"scaledeep/internal/tensor"
)

// randomNet builds a random linear-chain network within the functional
// backend's envelope: square geometry, invertible conv strides, floor-mode
// pools, no groups. The generator is seeded, so failures reproduce.
func randomNet(rng *tensor.RNG, idx int) *dnn.Network {
	b := dnn.NewBuilder(fmt.Sprintf("fuzz%d", idx))
	chans := 1 + rng.Intn(3)
	side := 6 + 2*rng.Intn(4) // 6..12, even
	cur := b.Input(chans, side, side)
	layers := 1 + rng.Intn(4)
	acts := []tensor.ActKind{tensor.ActNone, tensor.ActReLU, tensor.ActTanh, tensor.ActSigmoid}
	haveConv := false
	for li := 0; li < layers; li++ {
		switch rng.Intn(3) {
		case 0, 1: // conv
			out := 1 + rng.Intn(5)
			var k, stride, pad int
			if rng.Intn(4) == 0 && side%2 == 0 {
				// Strided conv with exactly-invertible geometry:
				// (side+2p-k) % 2 == 0.
				k, stride, pad = 2, 2, 0
			} else {
				k, stride = 3, 1
				pad = 1
			}
			if side < k {
				continue
			}
			cur = b.Conv(cur, fmt.Sprintf("c%d", li), out, k, stride, pad, acts[rng.Intn(len(acts))])
			side = (side+2*pad-k)/stride + 1
			haveConv = true
		case 2: // pool
			if side < 4 || side%2 != 0 {
				continue
			}
			kind := "max"
			if rng.Intn(2) == 0 {
				kind = "avg"
			}
			name := fmt.Sprintf("p%d", li)
			if kind == "max" {
				cur = b.MaxPool(cur, name, 2, 2)
			} else {
				cur = b.AvgPool(cur, name, 2, 2)
			}
			side /= 2
		}
	}
	if !haveConv && rng.Intn(2) == 0 {
		cur = b.Conv(cur, "cfix", 2, 3, 1, 1, tensor.ActReLU)
	}
	// Always finish with a small FC head so the golden-error injection has a
	// vector output.
	b.FC(cur, "fout", 2+rng.Intn(4), acts[rng.Intn(len(acts))])
	return b.Build()
}

// TestFuzzTrainingEquivalence compiles random networks, trains them for two
// iterations of a two-image minibatch on the functional simulator, and
// checks the trained weights against the software reference. Any divergence
// beyond float-ordering noise is a compiler or simulator bug.
func TestFuzzTrainingEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz equivalence is slow")
	}
	rng := tensor.NewRNG(0xF00D)
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		net := randomNet(rng, trial)
		t.Run(net.Name, func(t *testing.T) {
			runFuzzTrial(t, net, rng.Uint64())
		})
	}
}

func runFuzzTrial(t *testing.T, net *dnn.Network, seed uint64) {
	t.Helper()
	const mb = 2
	const iters = 2
	const lr = float32(0.03125)

	rng := tensor.NewRNG(seed)
	in := net.Layers[0].Out
	outLen := net.OutputLayer().Out.Elems()
	inputs := make([]*tensor.Tensor, mb)
	golden := make([]*tensor.Tensor, mb)
	for i := range inputs {
		inputs[i] = tensor.New(in.C, in.H, in.W)
		rng.FillUniform(inputs[i], 1)
		golden[i] = tensor.New(outLen)
		rng.FillUniform(golden[i], 1)
	}

	ref := dnn.NewExecutor(net, seed)
	ref.NoBias = true
	for it := 0; it < iters; it++ {
		for i, img := range inputs {
			out := ref.Forward(img)
			grad := out.Clone()
			tensor.Sub(grad, out, golden[i])
			ref.BackwardFrom(grad)
		}
		ref.Step(lr, 1)
	}

	init := dnn.NewExecutor(net, seed)
	init.NoBias = true
	opts := Options{Minibatch: mb, Iterations: iters, Training: true, LR: lr}
	c, m, _ := runSim(t, net, testChip(8), opts, init, inputs, golden)
	for _, l := range net.Layers {
		if !l.HasWeights() {
			continue
		}
		diff := tensor.MaxAbsDiff(c.ReadWeights(m, l.Index), ref.Weights[l.Index])
		if diff > 1e-3 {
			t.Errorf("net %s layer %s: trained weights diverge by %v (seed %#x)",
				net.Name, l.Name, diff, seed)
		}
	}
}

// TestFuzzEvalEquivalence is the forward-only variant with a larger
// minibatch, covering the evaluation code path.
func TestFuzzEvalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz equivalence is slow")
	}
	rng := tensor.NewRNG(0xBEEF)
	for trial := 0; trial < 15; trial++ {
		net := randomNet(rng, 100+trial)
		seed := rng.Uint64()
		t.Run(net.Name, func(t *testing.T) {
			const mb = 3
			r2 := tensor.NewRNG(seed)
			in := net.Layers[0].Out
			inputs := make([]*tensor.Tensor, mb)
			for i := range inputs {
				inputs[i] = tensor.New(in.C, in.H, in.W)
				r2.FillUniform(inputs[i], 1)
			}
			e := dnn.NewExecutor(net, seed)
			e.NoBias = true
			opts := Options{Minibatch: mb, Training: false}
			c, m, _ := runSim(t, net, testChip(8), opts, e, inputs, nil)
			for i, img := range inputs {
				want := e.Forward(img)
				got := c.ReadOutput(m, i)
				diff := tensor.MaxAbsDiff(tensor.FromSlice(got, len(got)), tensor.FromSlice(want.Data, want.Len()))
				if diff > 1e-4 {
					t.Errorf("image %d: FP output diverges by %v (seed %#x)", i, diff, seed)
				}
			}
		})
	}
}
