package compiler

import (
	"testing"

	"scaledeep/internal/arch"
	"scaledeep/internal/dnn"
	"scaledeep/internal/sim"
	"scaledeep/internal/tensor"
)

// runHalfSim runs a compiled network on a half-precision machine (every
// stored value quantized through binary16, as in the Fig. 17 design).
func runHalfSim(t *testing.T, net *dnn.Network, chip arch.ChipConfig, opts Options,
	e *dnn.Executor, inputs, golden []*tensor.Tensor) (*Compiled, *sim.Machine) {
	t.Helper()
	c, err := Compile(net, chip, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(chip, arch.Half, true)
	if err := c.Install(m); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadWeights(m, e); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadInputs(m, inputs); err != nil {
		t.Fatal(err)
	}
	if opts.Training {
		if err := c.LoadGolden(m, golden); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return c, m
}

// TestHalfPrecisionFPCloseToSingle checks that an FP16 forward pass tracks
// the FP32 reference within half-precision rounding (the accuracy-tolerance
// premise of §6.1's half-precision design [25, 50]).
func TestHalfPrecisionFPCloseToSingle(t *testing.T) {
	net := convPoolFCNet()
	e := dnn.NewExecutor(net, 42)
	e.NoBias = true
	inputs := mkInputs(net, 2, 7)
	opts := Options{Minibatch: 2, Training: false}
	c, m := runHalfSim(t, net, testChip(8), opts, e, inputs, nil)
	for i, in := range inputs {
		want := e.Forward(in)
		got := c.ReadOutput(m, i)
		diff := tensor.MaxAbsDiff(tensor.FromSlice(got, len(got)), tensor.FromSlice(want.Data, want.Len()))
		// binary16 has ~3 decimal digits; activations here are O(1).
		if diff > 0.05 {
			t.Errorf("image %d: FP16 output deviates by %v from FP32", i, diff)
		}
		if diff == 0 {
			t.Errorf("image %d: FP16 output identical to FP32 — quantization not applied", i)
		}
	}
}

// TestHalfPrecisionTrainingConverges trains through the FP16 datapath and
// checks the output error against the golden vector still shrinks.
func TestHalfPrecisionTrainingConverges(t *testing.T) {
	b := dnn.NewBuilder("hp-train")
	in := b.Input(2, 6, 6)
	c1 := b.Conv(in, "c1", 3, 3, 1, 1, tensor.ActTanh)
	f1 := b.FC(c1, "f1", 4, tensor.ActNone)
	_ = f1
	net := b.Build()

	e := dnn.NewExecutor(net, 5)
	e.NoBias = true
	inputs := mkInputs(net, 1, 17)
	golden := []*tensor.Tensor{tensor.FromSlice([]float32{1, -1, 0.5, 0}, 4)}

	errOf := func(out []float32) float64 {
		var s float64
		for i, v := range out {
			d := float64(v - golden[0].Data[i])
			s += d * d
		}
		return s
	}

	cEval, mEval := runHalfSim(t, net, testChip(6), Options{Minibatch: 1}, e, inputs, nil)
	before := errOf(cEval.ReadOutput(mEval, 0))

	opts := Options{Minibatch: 1, Iterations: 12, Training: true, LR: 0.03125}
	c, m := runHalfSim(t, net, testChip(6), opts, e, inputs, golden)
	after := errOf(c.ReadOutput(m, 0))
	if after > before*0.6 {
		t.Errorf("FP16 training did not reduce error: before %v after %v", before, after)
	}
}

// TestHalfPrecisionWeightsAreQuantized reads trained weights back and checks
// every value is representable in binary16 — the storage invariant of the
// half-precision design.
func TestHalfPrecisionWeightsAreQuantized(t *testing.T) {
	net := convPoolFCNet()
	e := dnn.NewExecutor(net, 42)
	e.NoBias = true
	inputs := mkInputs(net, 1, 7)
	golden := []*tensor.Tensor{tensor.New(5)}
	tensor.NewRNG(3).FillUniform(golden[0], 1)
	opts := Options{Minibatch: 1, Iterations: 1, Training: true, LR: 0.0625}
	c, m := runHalfSim(t, net, testChip(8), opts, e, inputs, golden)
	for _, l := range net.Layers {
		if !l.HasWeights() {
			continue
		}
		w := c.ReadWeights(m, l.Index)
		for i, v := range w.Data {
			if tensor.RoundHalf(v) != v {
				t.Fatalf("layer %s weight[%d] = %v not binary16-representable", l.Name, i, v)
			}
		}
	}
}
