package compiler

import (
	"fmt"
	"sort"
	"time"

	"scaledeep/internal/arch"
	"scaledeep/internal/dnn"
	"scaledeep/internal/isa"
	"scaledeep/internal/sim"
	"scaledeep/internal/telemetry"
)

// phaseSpan records one compiler phase on the "compiler" track: wall-clock
// microseconds relative to base (the pipeline's start).
func phaseSpan(sink telemetry.SpanSink, base, start time.Time, name string) {
	if sink == nil {
		return
	}
	sink.RecordSpan(telemetry.Span{
		Track: "compiler", Name: name,
		Start: start.Sub(base).Microseconds(),
		Dur:   time.Since(start).Microseconds(),
	})
}

// Options configure code generation.
type Options struct {
	Minibatch  int  // training inputs per minibatch (≥1)
	Iterations int  // minibatch iterations to run (≥1)
	Training   bool // emit BP/WG and the weight update; false = FP only
	// LR is the SGD learning rate applied to the summed minibatch gradient
	// (quantized to the WUPDATE fixed-point format, 1/2^16 steps).
	LR float32
	// WeightsOffChip stores layer weights in external memory instead of the
	// MemHeavy scratchpads (STEP6's other placement; §3.2.3: weights are
	// then streamed in when the layer executes). Gradients stay on-chip and
	// the weight update writes back to external memory.
	WeightsOffChip bool
	// Spans, when non-nil, receives wall-time spans (track "compiler", µs
	// timestamps) for the map/bind/emit/finalize phases of Fig. 13.
	Spans telemetry.SpanSink
}

// External-memory layout (element addresses).
const (
	extInputBase  int64 = 0
	extGoldenBase int64 = 4 << 20
	extOutputBase int64 = 8 << 20
	extWeightBase int64 = 16 << 20 // off-chip weight area (Options.WeightsOffChip)
)

// Compiled is the code-generation result: one program per CompHeavy tile,
// the tracker manifest, and the binding information the harness needs to
// load weights/inputs and read results.
type Compiled struct {
	Mapping  *Mapping
	Opts     Options
	Programs map[progKey]*isa.Program
	Trackers []sim.TrackerSpec

	// LayerTags binds each program's instructions back to network layers:
	// LayerTags[k][pc] is the dnn layer index instruction pc works for, or -1
	// for control/synchronization scaffolding. The per-layer bottleneck
	// profiler (internal/profile) joins this with the simulator's
	// per-instruction cycle attribution.
	LayerTags map[progKey][]int

	// weightRegions[layerIdx][g] is the on-chip region holding the kernels
	// (or FC row-slice) for input feature / slice g; nil entries mean the
	// unit's weights live off-chip at extWeightAddrs[layerIdx][g].
	weightRegions  map[int]map[int]*region
	extWeightAddrs map[int]map[int]int64

	InputElems  int64 // elements per input image
	OutputElems int64 // elements per network output
}

// gen carries code-generation state. Feature and error regions are
// replicated per minibatch image: the inter-layer pipeline (Fig. 10) keeps
// several images in flight, and per-image copies make every data-flow
// tracker generation independent. (The paper provisions two copies and
// bounds pipeline skew in its scheduler; per-image copies achieve the same
// correctness with a simpler invariant — see DESIGN.md §6.)
type gen struct {
	m        *Mapping
	chip     arch.ChipConfig
	opts     Options
	em       *emitter
	al       *allocator
	out      *Compiled
	maps     []*LayerMap
	grad     gradMap
	stage    gradMap
	ystage   gradMap
	estage   gradMap
	convSc   map[int]*convScratch
	gstage   map[TileCoord]*region
	epart    map[[3]int]*region
	extWNext int64 // bump allocator for the off-chip weight area

	// feat[mi][f][img], errRaw[mi][f][img], errDrv[mi][f][img]
	feat   []map[int][]*region
	errRaw []map[int][]*region
	errDrv []map[int][]*region
}

type gradMap = map[int]map[int]*region

// Generate runs the code-generation phase on a mapping.
func Generate(m *Mapping, opts Options) (*Compiled, error) {
	return generate(m, opts, time.Now())
}

// generate is Generate with an explicit telemetry time base, so Compile can
// put mapping and code generation on one phase timeline.
func generate(m *Mapping, opts Options, base time.Time) (*Compiled, error) {
	if opts.Minibatch < 1 {
		opts.Minibatch = 1
	}
	if opts.Iterations < 1 {
		opts.Iterations = 1
	}
	capElems := int64(m.Chip.MemHeavy.CapacityKB) * 1024 / 4
	al := newAllocator(m.Chip.Rows, m.Chip.Rows*(m.Chip.Cols+1), capElems)
	g := &gen{
		m: m, chip: m.Chip, opts: opts,
		em: newEmitter(al), al: al,
		maps: m.MappedLayers(),
		out: &Compiled{
			Mapping: m, Opts: opts,
			weightRegions:  map[int]map[int]*region{},
			extWeightAddrs: map[int]map[int]int64{},
		},
	}
	in := m.Net.Layers[0]
	g.out.InputElems = int64(in.Out.Elems())
	last := g.maps[len(g.maps)-1].Layer
	g.out.OutputElems = int64(last.Out.Elems())

	if err := g.run(base); err != nil {
		return nil, err
	}
	tFin := time.Now()
	progs, layerTags, trackers := g.em.finalize(opts.Iterations)
	phaseSpan(opts.Spans, base, tFin, "finalize")
	g.out.Programs = progs
	g.out.LayerTags = layerTags
	g.out.Trackers = trackers
	return g.out, nil
}

// ReplicaClasses groups the compiled per-tile programs into content
// equivalence classes: every tile in one class received a byte-identical
// instruction stream (equal isa.Program content hashes, e.g. the per-image
// column replicas of a data-parallel layer). Each class lists its tiles as
// "r<row>c<col>/<step>" labels in sorted order, and classes are sorted by
// their first label, so the output is stable across map iteration order.
// The simulator's within-chip replica memoization keys on the same program
// identity; this view lets tools report how much of a chip is replicated
// before anything runs.
func (c *Compiled) ReplicaClasses() [][]string {
	byHash := map[uint64][]string{}
	for k, p := range c.Programs {
		h := p.ContentHash()
		byHash[h] = append(byHash[h], fmt.Sprintf("r%dc%d/%s", k.Row, k.CCol, k.Step))
	}
	classes := make([][]string, 0, len(byHash))
	for _, labels := range byHash {
		sort.Strings(labels)
		classes = append(classes, labels)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	return classes
}

// LayerName resolves a LayerTags entry to the network layer's name
// ("(other)" for scaffolding tagged -1).
func (c *Compiled) LayerName(tag int) string {
	if tag < 0 || tag >= len(c.Mapping.Net.Layers) {
		return "(other)"
	}
	return c.Mapping.Net.Layers[tag].Name
}

func (g *gen) run(base time.Time) error {
	// Bind phase: allocate every layer's feature/error/weight state to tiles.
	tBind := time.Now()
	for mi, lm := range g.maps {
		g.allocLayerState(mi, lm)
	}
	phaseSpan(g.opts.Spans, base, tBind, "bind")
	// Emit phase. Per-layer persistent scratch (partial sums, staging) is
	// allocated by the emitters on their first image.
	tEmit := time.Now()
	for img := 0; img < g.opts.Minibatch; img++ {
		// The head comes first: it shares BP tiles with the final layer, and
		// its error-seeding ops must precede that layer's backward
		// convolutions in program order. Its instructions are attributed to
		// the final layer, on whose behalf the loss gradient is seeded.
		if g.opts.Training {
			g.em.setLayer(g.maps[len(g.maps)-1].Layer.Index)
			g.emitHead(img)
		}
		for mi, lm := range g.maps {
			g.em.setLayer(lm.Layer.Index)
			switch lm.Layer.Kind {
			case dnn.Conv:
				g.emitConvFP(mi, lm, img)
				if g.opts.Training {
					g.emitConvBPWG(mi, lm, img)
				}
			case dnn.Pool:
				g.emitPoolFP(mi, lm, img)
				if g.opts.Training {
					g.emitPoolBP(mi, lm, img)
				}
			case dnn.FC:
				g.emitFCFP(mi, lm, img)
				if g.opts.Training {
					g.emitFCBPWG(mi, lm, img)
				}
			}
		}
	}
	g.em.setLayer(untaggedLayer)
	g.emitBarrier()
	phaseSpan(g.opts.Spans, base, tEmit, "emit")
	return nil
}

// emitBarrier emits the iteration barrier: every program deposits a token
// in a shared tracked range and then reads the full set, so no tile starts
// iteration k+1 before every tile has finished iteration k — modeling the
// minibatch-end gradient accumulation and weight distribution over the
// wheel arcs and ring (§3.3).
func (g *gen) emitBarrier() {
	bar := g.al.alloc(TileCoord{Row: 0, MCol: 0}, 1, "barrier", kindBarrier)
	bar.gens = 1
	g.em.sec = secBatch
	for _, k := range g.em.keys() {
		tok := g.al.alloc(TileCoord{Row: k.Row, MCol: k.CCol}, 1,
			fmt.Sprintf("tok.r%d.c%d.%d", k.Row, k.CCol, k.Step), kindData)
		g.em.op(k, isa.MEMSET, []opr{C(bar.addr), C(isa.AbsTile(bar.tile)), C(1), C(0)}, wr(bar))
		g.em.op(k, isa.DMALOAD,
			[]opr{C(bar.addr), C(isa.AbsTile(bar.tile)), C(tok.addr), C(isa.PortLeft), C(1), C(0)},
			rd(bar))
	}
	g.em.sec = secIter
}

// featureElems returns the per-unit element count of a layer's output.
func featureElems(lm *LayerMap) int64 {
	l := lm.Layer
	switch l.Kind {
	case dnn.Conv, dnn.Pool:
		return int64(l.Out.H * l.Out.W)
	case dnn.FC:
		return int64(sliceLen(l.OutNeurons, len(lm.Homes), 0)) // max slice size
	}
	return 0
}

// sliceLen returns the length of FC output slice s when out neurons split
// into n near-equal slices (first slices take the remainder).
func sliceLen(out, n, s int) int {
	q, r := out/n, out%n
	if s < r {
		return q + 1
	}
	return q
}

// sliceOff returns the starting neuron of slice s.
func sliceOff(out, n, s int) int {
	q, r := out/n, out%n
	if s < r {
		return s * (q + 1)
	}
	return r*(q+1) + (s-r)*q
}

// allocLayerState allocates feature, error and weight regions for a layer.
// Feature and error regions get one copy per minibatch image.
func (g *gen) allocLayerState(mi int, lm *LayerMap) {
	l := lm.Layer
	mb := g.opts.Minibatch
	g.feat = append(g.feat, map[int][]*region{})
	g.errRaw = append(g.errRaw, map[int][]*region{})
	g.errDrv = append(g.errDrv, map[int][]*region{})

	for f, home := range lm.Homes {
		size := featureElems(lm)
		if l.Kind == dnn.FC {
			size = int64(sliceLen(l.OutNeurons, len(lm.Homes), f))
		}
		for img := 0; img < mb; img++ {
			g.feat[mi][f] = append(g.feat[mi][f],
				g.al.alloc(home, size, fmt.Sprintf("%s.feat%d.i%d", l.Name, f, img), kindData))
			if g.opts.Training {
				g.errRaw[mi][f] = append(g.errRaw[mi][f],
					g.al.alloc(home, size, fmt.Sprintf("%s.eraw%d.i%d", l.Name, f, img), kindData))
				g.errDrv[mi][f] = append(g.errDrv[mi][f],
					g.al.alloc(home, size, fmt.Sprintf("%s.edrv%d.i%d", l.Name, f, img), kindData))
			}
		}
	}

	if !l.HasWeights() {
		return
	}
	g.out.weightRegions[l.Index] = map[int]*region{}
	g.out.extWeightAddrs[l.Index] = map[int]int64{}
	allocW := func(unit int, tc TileCoord, size int64) {
		if g.opts.WeightsOffChip {
			g.out.extWeightAddrs[l.Index][unit] = g.extWNext
			g.extWNext += size
		} else {
			g.out.weightRegions[l.Index][unit] = g.al.alloc(tc, size, fmt.Sprintf("%s.w%d", l.Name, unit), kindWeight)
		}
		if g.opts.Training {
			dw := g.al.alloc(tc, size, fmt.Sprintf("%s.dw%d", l.Name, unit), kindGrad)
			g.gradRegion(l.Index, unit, dw)
		}
	}
	switch l.Kind {
	case dnn.Conv:
		k2 := int64(l.ConvP.KH * l.ConvP.KW)
		for g2 := 0; g2 < l.In.C; g2++ {
			allocW(g2, g.convInputTile(mi, lm, g2), int64(l.OutChannels)*k2)
		}
	case dnn.FC:
		inLen := int64(l.In.Elems())
		for s := range lm.Homes {
			sl := int64(sliceLen(l.OutNeurons, len(lm.Homes), s))
			allocW(s, g.fcComputeTile(lm, s), sl*inLen)
		}
	}
}

// weightOperand returns the address/port operands and ledger access for
// reading unit `unit`'s weights of layer l, wherever STEP6 placed them.
func (g *gen) weightOperand(l *dnn.Layer, unit int, offset int64) (addr, port opr, acc []regAccess) {
	if r := g.out.weightRegions[l.Index][unit]; r != nil {
		return C(r.addr + offset), C(isa.PortLeft), []regAccess{rd(r)}
	}
	return C(extWeightBase + g.out.extWeightAddrs[l.Index][unit] + offset), C(isa.PortExt), nil
}

func (g *gen) gradRegion(layerIdx, unit int, r *region) {
	if g.grad == nil {
		g.grad = gradMap{}
	}
	if g.grad[layerIdx] == nil {
		g.grad[layerIdx] = map[int]*region{}
	}
	g.grad[layerIdx][unit] = r
}

// convInputTile returns the tile holding input feature g2 of conv layer mi:
// the home of the predecessor's feature, or a round-robin assignment over
// the layer's left tiles when the input comes from external memory.
func (g *gen) convInputTile(mi int, lm *LayerMap, g2 int) TileCoord {
	if mi > 0 {
		return g.maps[mi-1].Homes[g2%len(g.maps[mi-1].Homes)]
	}
	idx := g2 % (g.chip.Rows * len(lm.Cols))
	return TileCoord{Row: idx % g.chip.Rows, MCol: lm.Cols[idx/g.chip.Rows]}
}

// fcComputeTile returns the compute tile of FC slice s.
func (g *gen) fcComputeTile(lm *LayerMap, s int) TileCoord {
	idx := s % (g.chip.Rows * len(lm.Cols))
	return TileCoord{Row: idx % g.chip.Rows, MCol: lm.Cols[idx/g.chip.Rows]}
}

// localInputs returns the input features of conv/pool layer mi whose storage
// tile is tc.
func (g *gen) localInputs(mi int, lm *LayerMap, tc TileCoord) []int {
	var out []int
	for g2 := 0; g2 < lm.Layer.In.C; g2++ {
		if g.convInputTile(mi, lm, g2) == tc {
			out = append(out, g2)
		}
	}
	return out
}

// inputOperand returns the operand and ledger access for reading input
// feature g2 of image img on tile k: a region access for on-chip features,
// or a constant external-memory address for the first layer.
func (g *gen) inputOperand(mi, g2, img int) (addr, port opr, acc []regAccess) {
	if mi > 0 {
		r := g.feat[mi-1][g2][img]
		return C(r.addr), C(isa.AbsTile(r.tile)), []regAccess{rd(r)}
	}
	l := g.maps[mi].Layer
	chSize := int64(l.In.H * l.In.W)
	base := extInputBase + int64(img)*g.out.InputElems + int64(g2)*chSize
	return C(base), C(isa.PortExt), nil
}
