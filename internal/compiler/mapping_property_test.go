package compiler

import (
	"testing"

	"scaledeep/internal/tensor"
)

// TestMappingInvariantsProperty re-checks the workload-mapping invariants of
// §4.1 over randomly generated networks (DESIGN.md §5.3): every layer gets
// at least its memory minimum and at least one column; the allocation is
// contiguous, in layer order, and uses the whole chip; every feature has
// exactly one home on a valid tile; and the mapping is deterministic.
func TestMappingInvariantsProperty(t *testing.T) {
	rng := tensor.NewRNG(0xABCD)
	chip := testChip(10)
	for trial := 0; trial < 40; trial++ {
		net := randomNet(rng, 1000+trial)
		m1, err := Map(net, chip)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m2, err := Map(net, chip)
		if err != nil {
			t.Fatalf("trial %d (repeat): %v", trial, err)
		}
		next := 0
		for li, lm := range m1.MappedLayers() {
			if len(lm.Cols) < 1 || len(lm.Cols) < lm.MinCols {
				t.Fatalf("trial %d layer %s: %d cols, min %d", trial, lm.Layer.Name, len(lm.Cols), lm.MinCols)
			}
			for _, c := range lm.Cols {
				if c != next {
					t.Fatalf("trial %d: non-contiguous columns %v", trial, lm.Cols)
				}
				next++
			}
			if len(lm.Homes) == 0 {
				t.Fatalf("trial %d layer %s has no homes", trial, lm.Layer.Name)
			}
			for _, h := range lm.Homes {
				if h.Row < 0 || h.Row >= chip.Rows || h.MCol < 0 || h.MCol > chip.Cols {
					t.Fatalf("trial %d: home %v out of grid", trial, h)
				}
			}
			// Determinism.
			lm2 := m2.MappedLayers()[li]
			if len(lm.Cols) != len(lm2.Cols) || len(lm.Homes) != len(lm2.Homes) {
				t.Fatalf("trial %d: mapping not deterministic", trial)
			}
		}
		if next != chip.Cols {
			t.Fatalf("trial %d: %d of %d columns allocated", trial, next, chip.Cols)
		}
		// Heavier layers never get fewer columns than a lighter layer gets
		// beyond both minimums... (weak form: total load-balancing sanity —
		// the single heaviest layer is not starved below the mean).
		mapped := m1.MappedLayers()
		var heaviest *LayerMap
		for _, lm := range mapped {
			if heaviest == nil || lm.TrainFLOPs > heaviest.TrainFLOPs {
				heaviest = lm
			}
		}
		if len(mapped) > 1 && len(heaviest.Cols) < chip.Cols/len(mapped)/2 {
			t.Fatalf("trial %d: heaviest layer %s starved with %d cols", trial, heaviest.Layer.Name, len(heaviest.Cols))
		}
	}
}
