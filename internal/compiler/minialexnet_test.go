package compiler

import (
	"testing"

	"scaledeep/internal/arch"
	"scaledeep/internal/dnn"
	"scaledeep/internal/tensor"
)

// miniAlexNet is AlexNet's 5-CONV/3-SAMP/3-FC structure scaled to 32×32
// inputs and narrow layers — the same topology shape as the paper's primary
// benchmark, small enough to train functionally on the simulator.
func miniAlexNet() *dnn.Network {
	b := dnn.NewBuilder("mini-alexnet")
	in := b.Input(3, 32, 32)
	c1 := b.Conv(in, "c1", 8, 5, 1, 2, tensor.ActReLU)
	s1 := b.MaxPool(c1, "s1", 2, 2) // 16
	c2 := b.Conv(s1, "c2", 12, 3, 1, 1, tensor.ActReLU)
	s2 := b.MaxPool(c2, "s2", 2, 2) // 8
	c3 := b.Conv(s2, "c3", 12, 3, 1, 1, tensor.ActReLU)
	c4 := b.Conv(c3, "c4", 12, 3, 1, 1, tensor.ActReLU)
	c5 := b.Conv(c4, "c5", 8, 3, 1, 1, tensor.ActReLU)
	s3 := b.MaxPool(c5, "s3", 2, 2) // 4
	f1 := b.FC(s3, "f1", 24, tensor.ActReLU)
	f2 := b.FC(f1, "f2", 16, tensor.ActReLU)
	f3 := b.FC(f2, "f3", 10, tensor.ActNone)
	_ = f3
	return b.Build()
}

// TestMiniAlexNetFunctionalTraining runs the paper's primary-benchmark
// topology shape end-to-end through compile → simulate → train, checking
// weight-for-weight equivalence with the software reference.
func TestMiniAlexNetFunctionalTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("mini-AlexNet functional training is slow")
	}
	net := miniAlexNet()
	chip := arch.Baseline().Cluster.Conv
	chip.Rows, chip.Cols = 4, 12
	chip.MemHeavy.CapacityKB = 1024

	const mb = 1
	const lr = float32(0.03125)
	inputs := mkInputs(net, mb, 7)
	golden := []*tensor.Tensor{tensor.New(10)}
	tensor.NewRNG(9).FillUniform(golden[0], 1)

	ref := dnn.NewExecutor(net, 42)
	ref.NoBias = true
	out := ref.Forward(inputs[0])
	grad := out.Clone()
	tensor.Sub(grad, out, golden[0])
	ref.BackwardFrom(grad)
	ref.Step(lr, 1)

	init := dnn.NewExecutor(net, 42)
	init.NoBias = true
	opts := Options{Minibatch: mb, Iterations: 1, Training: true, LR: lr}
	c, m, st := runSim(t, net, chip, opts, init, inputs, golden)
	for _, l := range net.Layers {
		if !l.HasWeights() {
			continue
		}
		diff := tensor.MaxAbsDiff(c.ReadWeights(m, l.Index), ref.Weights[l.Index])
		if diff > 1e-3 {
			t.Errorf("mini-AlexNet layer %s diverges by %v", l.Name, diff)
		}
	}
	t.Logf("mini-AlexNet: %d programs, %d instructions, %d cycles, %d FLOPs",
		len(c.Programs), c.TotalInstructions(), st.Cycles, st.FLOPs)
}

// TestMapRejectsOversizedNetwork: a network whose memory minimum exceeds the
// chip must be refused with a clear error (multi-chip mapping is the
// analytic model's job).
func TestMapRejectsOversizedNetwork(t *testing.T) {
	b := dnn.NewBuilder("huge")
	in := b.Input(64, 64, 64)
	var cur = in
	for i := 0; i < 6; i++ {
		cur = b.Conv(cur, "c"+string(rune('0'+i)), 64, 3, 1, 1, tensor.ActReLU)
	}
	net := b.Build()
	chip := testChip(4) // tiny chip
	if _, err := Map(net, chip); err == nil {
		t.Fatal("oversized network accepted on a tiny chip")
	}
}
