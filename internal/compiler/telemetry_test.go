package compiler

import (
	"testing"

	"scaledeep/internal/telemetry"
)

func TestCompilePhaseSpans(t *testing.T) {
	tr := telemetry.NewTrace(0)
	opts := Options{Minibatch: 1, Iterations: 1, Training: true, LR: 0.03125, Spans: tr}
	if _, err := Compile(convPoolFCNet(), testChip(8), opts); err != nil {
		t.Fatal(err)
	}

	got := map[string]int{}
	for _, s := range tr.Spans() {
		if s.Track != "compiler" {
			t.Fatalf("span on track %q, want compiler: %+v", s.Track, s)
		}
		if s.Start < 0 || s.Dur < 0 {
			t.Fatalf("degenerate span: %+v", s)
		}
		got[s.Name]++
	}
	for _, want := range []string{"map", "bind", "emit", "finalize"} {
		if got[want] == 0 {
			t.Errorf("missing %q phase span (have %v)", want, got)
		}
	}
}

func TestCompileNilSinkUnchanged(t *testing.T) {
	opts := Options{Minibatch: 1, Iterations: 1, Training: false}
	a, err := Compile(convPoolFCNet(), testChip(8), opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTrace(0)
	opts.Spans = tr
	b, err := Compile(convPoolFCNet(), testChip(8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalInstructions() != b.TotalInstructions() {
		t.Fatalf("telemetry changed codegen: %d vs %d instructions",
			a.TotalInstructions(), b.TotalInstructions())
	}
}
