package compiler

import (
	"fmt"
	"time"

	"scaledeep/internal/arch"
	"scaledeep/internal/dnn"
	"scaledeep/internal/sim"
	"scaledeep/internal/tensor"
)

// This file binds compiled programs to a simulator instance: installing
// programs and trackers, pre-loading weights in the compiler's on-chip
// layout, staging inputs and golden outputs in external memory, and reading
// results and trained weights back out.

// Install loads every program and arms the tracker manifest on m.
func (c *Compiled) Install(m *sim.Machine) error {
	for k, p := range c.Programs {
		if err := m.LoadProgram(k.Row, k.CCol, k.Step, p); err != nil {
			return fmt.Errorf("compiler: install %v: %w", k, err)
		}
	}
	m.ArmTrackers(c.Trackers)
	return nil
}

// LoadWeights writes an executor's current parameters into the simulator's
// scratchpads using the compiled layout (per input feature g, the kernels
// for every output feature consecutively; per FC slice, the contiguous
// weight rows). Biases must be zero — the hardware path folds no bias term
// (see Executor.NoBias).
func (c *Compiled) LoadWeights(m *sim.Machine, e *dnn.Executor) error {
	write := func(li, unit int, vals []float32) {
		if r := c.weightRegions[li][unit]; r != nil {
			m.WriteMem(r.tile, r.addr, vals)
			return
		}
		m.WriteExt(extWeightBase+c.extWeightAddrs[li][unit], vals)
	}
	units := func(li int) int {
		if n := len(c.weightRegions[li]); n > 0 {
			return n
		}
		return len(c.extWeightAddrs[li])
	}
	for li := range c.weightRegions {
		l := c.Mapping.Net.Layers[li]
		w := e.Weights[li]
		if w == nil {
			return fmt.Errorf("compiler: layer %s has no executor weights", l.Name)
		}
		switch l.Kind {
		case dnn.Conv:
			k2 := l.ConvP.KH * l.ConvP.KW
			for g2 := 0; g2 < l.In.C; g2++ {
				vals := make([]float32, l.OutChannels*k2)
				for f := 0; f < l.OutChannels; f++ {
					src := ((f*l.In.C + g2) * k2)
					copy(vals[f*k2:(f+1)*k2], w.Data[src:src+k2])
				}
				write(li, g2, vals)
			}
		case dnn.FC:
			inLen := l.In.Elems()
			n := units(li)
			for s := 0; s < n; s++ {
				off := sliceOff(l.OutNeurons, n, s) * inLen
				sl := sliceLen(l.OutNeurons, n, s) * inLen
				write(li, s, w.Data[off:off+sl])
			}
		}
	}
	return nil
}

// ReadWeights reads the (possibly trained) weights of one layer back from
// the simulator in executor layout. Reads go through the simulator's Into
// variants: FC slices land directly in the result tensor, and the Conv path
// reuses one staging buffer across input features, so readback allocates
// only the tensor it returns.
func (c *Compiled) ReadWeights(m *sim.Machine, layerIdx int) *tensor.Tensor {
	l := c.Mapping.Net.Layers[layerIdx]
	readInto := func(unit int, dst []float32) {
		if r := c.weightRegions[layerIdx][unit]; r != nil {
			m.ReadMemInto(r.tile, r.addr, dst)
			return
		}
		m.ReadExtInto(extWeightBase+c.extWeightAddrs[layerIdx][unit], dst)
	}
	units := func() int {
		if n := len(c.weightRegions[layerIdx]); n > 0 {
			return n
		}
		return len(c.extWeightAddrs[layerIdx])
	}
	switch l.Kind {
	case dnn.Conv:
		k2 := l.ConvP.KH * l.ConvP.KW
		w := tensor.New(l.OutChannels, l.In.C, l.ConvP.KH, l.ConvP.KW)
		vals := make([]float32, l.OutChannels*k2)
		for g2 := 0; g2 < l.In.C; g2++ {
			readInto(g2, vals)
			for f := 0; f < l.OutChannels; f++ {
				dst := (f*l.In.C + g2) * k2
				copy(w.Data[dst:dst+k2], vals[f*k2:(f+1)*k2])
			}
		}
		return w
	case dnn.FC:
		inLen := l.In.Elems()
		w := tensor.New(l.OutNeurons, inLen)
		n := units()
		for s := 0; s < n; s++ {
			off := sliceOff(l.OutNeurons, n, s) * inLen
			sl := sliceLen(l.OutNeurons, n, s) * inLen
			readInto(s, w.Data[off:off+sl])
		}
		return w
	default:
		panic("compiler: ReadWeights on weightless layer")
	}
}

// LoadInputs stages the minibatch input images in external memory.
func (c *Compiled) LoadInputs(m *sim.Machine, images []*tensor.Tensor) error {
	if len(images) != c.Opts.Minibatch {
		return fmt.Errorf("compiler: %d images for minibatch %d", len(images), c.Opts.Minibatch)
	}
	for i, img := range images {
		if int64(img.Len()) != c.InputElems {
			return fmt.Errorf("compiler: image %d has %d elements, want %d", i, img.Len(), c.InputElems)
		}
		m.WriteExt(extInputBase+int64(i)*c.InputElems, img.Data)
	}
	return nil
}

// LoadGolden stages the golden output vectors for the minibatch.
func (c *Compiled) LoadGolden(m *sim.Machine, golden []*tensor.Tensor) error {
	if len(golden) != c.Opts.Minibatch {
		return fmt.Errorf("compiler: %d golden vectors for minibatch %d", len(golden), c.Opts.Minibatch)
	}
	for i, gv := range golden {
		if int64(gv.Len()) != c.OutputElems {
			return fmt.Errorf("compiler: golden %d has %d elements, want %d", i, gv.Len(), c.OutputElems)
		}
		m.WriteExt(extGoldenBase+int64(i)*c.OutputElems, gv.Data)
	}
	return nil
}

// ReadOutput reads the network output for minibatch image i (written to the
// per-image output area in external memory by the final layer's FP code).
func (c *Compiled) ReadOutput(m *sim.Machine, i int) []float32 {
	out := make([]float32, c.OutputElems)
	c.ReadOutputInto(m, i, out)
	return out
}

// ReadOutputInto reads the network output for image i into dst (sized
// OutputElems by the caller); the buffer-reusing variant of ReadOutput for
// loops that read many outputs.
func (c *Compiled) ReadOutputInto(m *sim.Machine, i int, dst []float32) {
	m.ReadExtInto(extOutputBase+int64(i)*c.OutputElems, dst)
}

// TotalInstructions sums the instruction counts of every generated program.
func (c *Compiled) TotalInstructions() int {
	n := 0
	for _, p := range c.Programs {
		n += len(p.Instrs)
	}
	return n
}

// Compile is the convenience front-end: workload mapping followed by code
// generation, the full pipeline of Fig. 13. When opts.Spans is set, the
// map/bind/emit/finalize phases are recorded as wall-time spans on one
// shared timeline.
func Compile(net *dnn.Network, chip arch.ChipConfig, opts Options) (*Compiled, error) {
	base := time.Now()
	m, err := Map(net, chip)
	if err != nil {
		return nil, err
	}
	phaseSpan(opts.Spans, base, base, "map")
	return generate(m, opts, base)
}
