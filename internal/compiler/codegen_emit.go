package compiler

import (
	"fmt"
	"sort"

	"scaledeep/internal/dnn"
	"scaledeep/internal/isa"
	"scaledeep/internal/sim"
	"scaledeep/internal/tensor"
)

// This file instantiates the per-layer-type assembly templates (§4.2). The
// FP step of a CONV layer follows Fig. 9's four steps: per-tile convolution
// with local accumulation, vertical accumulation to the home row,
// horizontal accumulation to the last column, then activation (and
// sampling) before the result is passed to each feature's home tile. BP and
// WG are colocated with the feature they produce, so their accumulations
// stay local and only the already-reduced error features travel.
//
// The generated code fixes the home row at 0. The paper rotates home rows
// per feature batch to balance load; the rotation is a performance detail
// captured by the analytic model (internal/perfmodel), while fixing it here
// keeps every tracker generation uniform.

const homeRow = 0

// fpStep returns the CompHeavy tile set that executes forward work unit
// `idx`. During training, FP work runs on the FP tiles; during evaluation
// the BP and WG tile sets also run FP (§6.1: "during evaluation, the BP/WG
// CompHeavy tiles could also be used to perform FP"), which is where the
// >3× evaluation throughput comes from.
func (g *gen) fpStep(idx int) sim.Step {
	if g.opts.Training {
		return sim.StepFP
	}
	return sim.Step(idx % 3)
}

func actFnKind(a tensor.ActKind) int64 {
	switch a {
	case tensor.ActReLU:
		return isa.ActFnReLU
	case tensor.ActTanh:
		return isa.ActFnTanh
	case tensor.ActSigmoid:
		return isa.ActFnSigmoid
	default:
		panic(fmt.Sprintf("compiler: unsupported activation %v", a))
	}
}

func boolFlag(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (g *gen) isLast(mi int) bool { return mi == len(g.maps)-1 }

// outUnitOffset returns the flattened offset of output unit f within the
// layer's full output vector.
func outUnitOffset(lm *LayerMap, f int) int64 {
	l := lm.Layer
	if l.Kind == dnn.FC {
		return int64(sliceOff(l.OutNeurons, len(lm.Homes), f))
	}
	return int64(f) * int64(l.Out.H*l.Out.W)
}

// keys returns the emitter's program keys in deterministic order.
func (e *emitter) keys() []progKey {
	out := make([]progKey, 0, len(e.progs))
	for k := range e.progs {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return lessKey(out[i], out[j]) })
	return out
}

// convScratch holds the per-layer persistent FP scratch: partial-sum regions
// per compute tile plus the activation staging buffer, one set per tile set
// that executes forward batches (one set during training; three during
// evaluation, where the BP/WG tiles also run FP and must not share
// generation-ordered scratch with the FP tiles).
type convScratch struct {
	partial [3]map[TileCoord]*region
	actT    [3]*region
}

var _ = sort.Ints // keep sort imported even if keys() moves

// convScratchFor lazily allocates the conv layer's partial-sum regions on
// the first image (shared across images; their trackers run one generation
// per output-feature batch executed on that tile set).
func (g *gen) convScratchFor(mi int, lm *LayerMap) *convScratch {
	if g.convSc == nil {
		g.convSc = map[int]*convScratch{}
	}
	if sc := g.convSc[mi]; sc != nil {
		return sc
	}
	l := lm.Layer
	lanes := lm.Array.Lanes
	outHW := int64(l.Out.H * l.Out.W)
	batches := (l.OutChannels + lanes - 1) / lanes
	sets := 1
	if !g.opts.Training {
		sets = 3
		if batches < sets {
			sets = batches
		}
	}
	cols := lm.Cols
	clast := cols[len(cols)-1]
	sc := &convScratch{}
	for set := 0; set < sets; set++ {
		// Generations per iteration for this set: the batches it executes,
		// times the minibatch images.
		nb := batches / sets
		if set < batches%sets {
			nb++
		}
		gens := nb * g.opts.Minibatch
		sc.partial[set] = map[TileCoord]*region{}
		for _, c := range cols {
			for r := 0; r < g.chip.Rows; r++ {
				tc := TileCoord{Row: r, MCol: c}
				if r != homeRow && len(g.localInputs(mi, lm, tc)) == 0 {
					continue
				}
				pr := g.al.alloc(TileCoord{Row: r, MCol: c + 1}, int64(lanes)*outHW,
					fmt.Sprintf("%s.part%d.r%d.c%d", l.Name, set, r, c), kindPartial)
				pr.gens = gens
				sc.partial[set][tc] = pr
			}
		}
		sc.actT[set] = g.al.alloc(TileCoord{Row: homeRow, MCol: clast + 1}, int64(lanes)*outHW,
			fmt.Sprintf("%s.actT%d", l.Name, set), kindPartial)
		sc.actT[set].gens = gens
	}
	g.convSc[mi] = sc
	return sc
}

// fpSet returns the scratch-set index for forward batch b.
func (g *gen) fpSet(mi int, lm *LayerMap, b int) int {
	if g.opts.Training {
		return 0
	}
	lanes := lm.Array.Lanes
	batches := (lm.Layer.OutChannels + lanes - 1) / lanes
	sets := 3
	if batches < sets {
		sets = batches
	}
	return b % sets
}

// emitConvFP emits the CONV-layer forward template for one image.
func (g *gen) emitConvFP(mi int, lm *LayerMap, img int) {
	l := lm.Layer
	R := g.chip.Rows
	cols := lm.Cols
	clast := cols[len(cols)-1]
	lanes := lm.Array.Lanes
	outHW := int64(l.Out.H * l.Out.W)
	batches := (l.OutChannels + lanes - 1) / lanes
	k2 := int64(l.ConvP.KH * l.ConvP.KW)
	sc := g.convScratchFor(mi, lm)

	g.em.sec = secIter
	for b := 0; b < batches; b++ {
		set := g.fpSet(mi, lm, b)
		partial := sc.partial[set]
		actT := sc.actT[set]
		nk := lanes
		if rem := l.OutChannels - b*lanes; rem < nk {
			nk = rem
		}
		// Step 1: per-tile batch convolutions with local accumulation.
		for _, c := range cols {
			for r := 0; r < R; r++ {
				tc := TileCoord{Row: r, MCol: c}
				pr := partial[tc]
				if pr == nil {
					continue
				}
				k := progKey{Row: r, CCol: c, Step: g.fpStep(b)}
				locals := g.localInputs(mi, lm, tc)
				if len(locals) == 0 {
					// Home-row gather target with no local inputs: zero it
					// so the accumulating gathers start clean.
					g.em.op(k, isa.MEMSET,
						[]opr{C(pr.addr), C(isa.PortRight), C(int64(nk) * outHW), C(0)}, wr(pr))
					continue
				}
				for j, g2 := range locals {
					inAddr, inPort, inAcc := g.inputOperand(mi, g2, img)
					wAddr, wPort, wAcc := g.weightOperand(l, g2, int64(b*lanes)*k2)
					ops := []opr{
						C(isa.ModeFwd), inAddr, inPort, C(int64(l.In.H)), C(int64(l.In.W)),
						wAddr, wPort, C(int64(l.ConvP.KH)),
						C(int64(l.ConvP.StrideH)), C(int64(l.ConvP.PadH)),
						C(pr.addr), C(isa.PortRight), C(int64(nk)), C(boolFlag(j > 0)),
					}
					g.em.op(k, isa.NDCONV, ops, append(append(inAcc, wAcc...), wr(pr))...)
				}
			}
		}
		// Step 2: vertical accumulation into the home row, pulled by the
		// home-row tile (reads block on the source partial's tracker).
		for _, c := range cols {
			k0 := progKey{Row: homeRow, CCol: c, Step: g.fpStep(b)}
			pr0 := partial[TileCoord{Row: homeRow, MCol: c}]
			for r := 0; r < R; r++ {
				if r == homeRow {
					continue
				}
				src := partial[TileCoord{Row: r, MCol: c}]
				if src == nil {
					continue
				}
				g.em.op(k0, isa.DMALOAD,
					[]opr{C(src.addr), C(isa.AbsTile(src.tile)), C(pr0.addr), C(isa.PortRight), C(int64(nk) * outHW), C(1)},
					rd(src), wr(pr0))
			}
		}
		// Step 3: horizontal accumulation into the last column.
		kH := progKey{Row: homeRow, CCol: clast, Step: g.fpStep(b)}
		prLast := partial[TileCoord{Row: homeRow, MCol: clast}]
		for _, c := range cols {
			if c == clast {
				continue
			}
			src := partial[TileCoord{Row: homeRow, MCol: c}]
			g.em.op(kH, isa.DMALOAD,
				[]opr{C(src.addr), C(isa.AbsTile(src.tile)), C(prLast.addr), C(isa.PortRight), C(int64(nk) * outHW), C(1)},
				rd(src), wr(prLast))
		}
		// Step 4: activation at the home tile, then pass each feature to its
		// home MemHeavy tile (and the per-image output area in external
		// memory for the final layer).
		if l.Act != tensor.ActNone {
			g.em.op(kH, isa.NDACTFN,
				[]opr{C(actFnKind(l.Act)), C(prLast.addr), C(isa.PortRight), C(int64(nk) * outHW), C(actT.addr), C(isa.PortRight)},
				rd(prLast), wr(actT))
		} else {
			g.em.op(kH, isa.DMALOAD,
				[]opr{C(prLast.addr), C(isa.PortRight), C(actT.addr), C(isa.PortRight), C(int64(nk) * outHW), C(0)},
				rd(prLast), wr(actT))
		}
		for j := 0; j < nk; j++ {
			f := b*lanes + j
			fr := g.feat[mi][f][img]
			g.em.op(kH, isa.DMASTORE,
				[]opr{C(actT.addr + int64(j)*outHW), C(isa.PortRight), C(fr.addr), C(isa.AbsTile(fr.tile)), C(outHW), C(0)},
				rd(actT), wr(fr))
			if g.isLast(mi) {
				dst := extOutputBase + int64(img)*g.out.OutputElems + outUnitOffset(lm, f)
				g.em.op(kH, isa.DMASTORE,
					[]opr{C(actT.addr + int64(j)*outHW), C(isa.PortRight), C(dst), C(isa.PortExt), C(outHW), C(0)},
					rd(actT))
			}
		}
	}
}

// emitConvBPWG emits the CONV-layer backward and weight-gradient templates
// for one image (plus, on the last image, the batch-section weight update).
func (g *gen) emitConvBPWG(mi int, lm *LayerMap, img int) {
	l := lm.Layer
	R := g.chip.Rows
	k2 := int64(l.ConvP.KH * l.ConvP.KW)

	for _, c := range lm.Cols {
		for r := 0; r < R; r++ {
			tc := TileCoord{Row: r, MCol: c}
			locals := g.localInputs(mi, lm, tc)
			if len(locals) == 0 {
				continue
			}
			kBP := progKey{Row: r, CCol: c, Step: sim.StepBP}
			kWG := progKey{Row: r, CCol: c, Step: sim.StepWG}
			for _, g2 := range locals {
				// BP: propagate this layer's output errors back to input
				// feature g2's error, colocated with g2 (skip at the first
				// layer — the error at the network input is discarded).
				if mi > 0 {
					eRaw := g.errRaw[mi-1][g2][img]
					g.em.sec = secIter
					for f := 0; f < l.OutChannels; f++ {
						eF := g.errDrv[mi][f][img]
						wAddr, wPort, wAcc := g.weightOperand(l, g2, int64(f)*k2)
						ops := []opr{
							C(isa.ModeBwdData), C(eF.addr), C(isa.AbsTile(eF.tile)),
							C(int64(l.Out.H)), C(int64(l.Out.W)),
							wAddr, wPort, C(int64(l.ConvP.KH)),
							C(int64(l.ConvP.StrideH)), C(int64(l.ConvP.PadH)),
							C(eRaw.addr), C(isa.PortLeft), C(1), C(boolFlag(f > 0)),
						}
						g.em.op(kBP, isa.NDCONV, ops, append(append([]regAccess{rd(eF)}, wAcc...), wr(eRaw))...)
					}
					g.finishError(kBP, mi-1, g2, img, isa.PortLeft)
				}
				// WG: accumulate dW[f][g2] = input(g2) ⊛ error(f) locally.
				g.em.sec = secIter
				dw := g.grad[l.Index][g2]
				for f := 0; f < l.OutChannels; f++ {
					eF := g.errDrv[mi][f][img]
					inAddr, inPort, inAcc := g.inputOperand(mi, g2, img)
					ops := []opr{
						C(isa.ModeBwdWeight), inAddr, inPort, C(int64(l.In.H)), C(int64(l.In.W)),
						C(eF.addr), C(isa.AbsTile(eF.tile)), C(int64(l.Out.H)),
						C(int64(l.ConvP.StrideH)), C(int64(l.ConvP.PadH)),
						C(dw.addr + int64(f)*k2), C(isa.PortLeft), C(1), C(1),
					}
					g.em.op(kWG, isa.NDCONV, ops, append(inAcc, rd(eF), wr(dw))...)
				}
				if img == g.opts.Minibatch-1 {
					g.emitWeightUpdateFor(kWG, l, g2, dw)
				}
			}
		}
	}
}

// finishError turns the raw accumulated error of layer pi's unit g2 into
// the consumable error: copy raw → derived, then multiply in place by the
// producing layer's activation derivative (expressed via the stored forward
// output, §3.1.2).
func (g *gen) finishError(k progKey, pi, g2, img int, port int64) {
	eRaw := g.errRaw[pi][g2][img]
	eDrv := g.errDrv[pi][g2][img]
	g.em.sec = secIter
	g.em.op(k, isa.DMALOAD,
		[]opr{C(eRaw.addr), C(port), C(eDrv.addr), C(port), C(eRaw.size), C(0)},
		rd(eRaw), wr(eDrv))
	act := g.maps[pi].Layer.Act
	if act != tensor.ActNone {
		y := g.feat[pi][g2][img]
		g.em.op(k, isa.NDACTFN,
			[]opr{C(isa.ActFnDerivBase + actFnKind(act)), C(y.addr), C(port), C(eDrv.size), C(eDrv.addr), C(port)},
			rd(y), wr(eDrv))
	}
}

// emitWeightUpdateFor emits the end-of-minibatch SGD update for unit `unit`
// of layer l — updating the weights wherever STEP6 placed them — and the
// gradient reset (plus the prologue reset that keeps every tracker
// generation uniform). Off-chip updates are safe because the iteration
// barrier orders them against the next iteration's streamed weight reads.
func (g *gen) emitWeightUpdateFor(k progKey, l *dnn.Layer, unit int, dw *region) {
	lr := int64(float64(g.opts.LR) * float64(int64(1)<<isa.WUpdateLRShift))
	wAddr, wPort, _ := g.weightOperand(l, unit, 0)
	// WUPDATE's tracker accesses are one gradient read and one weight
	// WRITE (the write is gated on the weight generation's reads draining;
	// see sim.execWUpdate) — never a counted weight read.
	accs := []regAccess{rd(dw)}
	if r := g.out.weightRegions[l.Index][unit]; r != nil {
		accs = append(accs, wr(r))
	}
	g.em.sec = secBatch
	g.em.op(k, isa.WUPDATE,
		[]opr{wAddr, wPort, C(dw.addr), C(isa.PortLeft), C(dw.size), C(lr)},
		accs...)
	g.em.op(k, isa.MEMSET, []opr{C(dw.addr), C(isa.PortLeft), C(dw.size), C(0)}, wr(dw))
	g.em.sec = secPrologue
	g.em.op(k, isa.MEMSET, []opr{C(dw.addr), C(isa.PortLeft), C(dw.size), C(0)}, wr(dw))
	g.em.sec = secIter
}

// emitPoolFP emits the SAMP-layer forward template: each feature is
// down-sampled independently on its way to its home tile (§2.2).
func (g *gen) emitPoolFP(mi int, lm *LayerMap, img int) {
	l := lm.Layer
	kind := isa.SampMax
	if l.PoolP.Kind == tensor.AvgPool {
		kind = isa.SampAvg
	}
	g.em.sec = secIter
	for _, c := range lm.Cols {
		for r := 0; r < g.chip.Rows; r++ {
			tc := TileCoord{Row: r, MCol: c}
			for _, g2 := range g.localInputs(mi, lm, tc) {
				k := progKey{Row: r, CCol: c, Step: g.fpStep(g2)}
				inAddr, inPort, inAcc := g.inputOperand(mi, g2, img)
				out := g.feat[mi][g2][img]
				g.em.op(k, isa.NDSUBSAMP,
					[]opr{C(kind), inAddr, inPort, C(int64(l.In.H)), C(int64(l.In.W)),
						C(int64(l.PoolP.Window)), C(int64(l.PoolP.Stride)), C(int64(l.PoolP.Pad)),
						C(out.addr), C(isa.AbsTile(out.tile))},
					append(inAcc, wr(out))...)
				if g.isLast(mi) {
					dst := extOutputBase + int64(img)*g.out.OutputElems + outUnitOffset(lm, g2)
					g.em.op(k, isa.DMASTORE,
						[]opr{C(out.addr), C(isa.AbsTile(out.tile)), C(dst), C(isa.PortExt), C(out.size), C(0)},
						rd(out))
				}
			}
		}
	}
}

// emitPoolBP emits the SAMP-layer backward template: errors are up-sampled
// through the recorded max routing (or spread evenly for average pooling).
func (g *gen) emitPoolBP(mi int, lm *LayerMap, img int) {
	l := lm.Layer
	kind := isa.SampMax
	if l.PoolP.Kind == tensor.AvgPool {
		kind = isa.SampAvg
	}
	for _, c := range lm.Cols {
		for r := 0; r < g.chip.Rows; r++ {
			tc := TileCoord{Row: r, MCol: c}
			k := progKey{Row: r, CCol: c, Step: sim.StepBP}
			for _, g2 := range g.localInputs(mi, lm, tc) {
				if mi == 0 {
					continue
				}
				eOut := g.errDrv[mi][g2][img]
				eRaw := g.errRaw[mi-1][g2][img]
				fwdOut := g.feat[mi][g2][img]
				g.em.sec = secIter
				g.em.op(k, isa.NDUPSAMP,
					[]opr{C(kind), C(eOut.addr), C(isa.AbsTile(eOut.tile)), C(int64(l.In.H)), C(int64(l.In.W)),
						C(int64(l.PoolP.Window)), C(int64(l.PoolP.Stride)), C(int64(l.PoolP.Pad)),
						C(eRaw.addr), C(isa.PortLeft), C(fwdOut.addr)},
					rd(eOut), wr(eRaw))
				g.finishError(k, mi-1, g2, img, isa.PortLeft)
			}
		}
	}
}

// emitFCFP emits the FC-layer forward template: gather the input vector,
// multiply by the local weight slice, and store the output slice to its
// home tile (model parallelism over output neurons, §3.3.2).
func (g *gen) emitFCFP(mi int, lm *LayerMap, img int) {
	l := lm.Layer
	inLen := int64(l.In.Elems())
	for s := range lm.Homes {
		tc := g.fcComputeTile(lm, s)
		k := progKey{Row: tc.Row, CCol: tc.MCol, Step: g.fpStep(s)}
		xStage := g.fcStage(l.Index, s, tc, inLen)
		g.em.sec = secIter
		if mi == 0 {
			// First layer: gather the flattened input image from external
			// memory in one transfer.
			src := extInputBase + int64(img)*g.out.InputElems
			g.em.op(k, isa.DMALOAD,
				[]opr{C(src), C(isa.PortExt), C(xStage.addr), C(isa.PortLeft), C(inLen), C(0)},
				wr(xStage))
		} else {
			prev := g.maps[mi-1]
			for gp := range prev.Homes {
				in := g.feat[mi-1][gp][img]
				off := outUnitOffset(prev, gp)
				g.em.op(k, isa.DMALOAD,
					[]opr{C(in.addr), C(isa.AbsTile(in.tile)), C(xStage.addr + off), C(isa.PortLeft), C(in.size), C(0)},
					rd(in), wr(xStage))
			}
		}
		y := g.feat[mi][s][img]
		sl := int64(sliceLen(l.OutNeurons, len(lm.Homes), s))
		wAddr, wPort, wAcc := g.weightOperand(l, s, 0)
		// Compute into a local stage (single-tile, so program order alone
		// serializes matmul → activation), then pass to the home tile.
		yStage := g.fcYStage(l.Index, s, tc, sl)
		g.em.op(k, isa.MATMUL,
			[]opr{C(isa.ModeFwd), wAddr, wPort, C(sl), C(inLen),
				C(xStage.addr), C(isa.PortLeft), C(yStage.addr), C(isa.PortLeft), C(0)},
			append(wAcc, rd(xStage), wr(yStage))...)
		if l.Act != tensor.ActNone {
			g.em.op(k, isa.NDACTFN,
				[]opr{C(actFnKind(l.Act)), C(yStage.addr), C(isa.PortLeft), C(sl), C(yStage.addr), C(isa.PortLeft)},
				rd(yStage), wr(yStage))
		}
		g.em.op(k, isa.DMASTORE,
			[]opr{C(yStage.addr), C(isa.PortLeft), C(y.addr), C(isa.AbsTile(y.tile)), C(sl), C(0)},
			rd(yStage), wr(y))
		if g.isLast(mi) {
			dst := extOutputBase + int64(img)*g.out.OutputElems + outUnitOffset(lm, s)
			g.em.op(k, isa.DMASTORE,
				[]opr{C(yStage.addr), C(isa.PortLeft), C(dst), C(isa.PortExt), C(sl), C(0)},
				rd(yStage))
		}
	}
}

// fcStage lazily allocates the per-slice input staging buffer (shared
// across images: its tracker runs one generation per image).
func (g *gen) fcStage(layerIdx, s int, tc TileCoord, inLen int64) *region {
	if g.stage == nil {
		g.stage = gradMap{}
	}
	if g.stage[layerIdx] == nil {
		g.stage[layerIdx] = map[int]*region{}
	}
	if r := g.stage[layerIdx][s]; r != nil {
		return r
	}
	r := g.al.alloc(tc, inLen, fmt.Sprintf("fc%d.x%d", layerIdx, s), kindData)
	r.gens = g.opts.Minibatch
	g.stage[layerIdx][s] = r
	return r
}

// fcYStage lazily allocates the per-slice output staging buffer.
func (g *gen) fcYStage(layerIdx, s int, tc TileCoord, sl int64) *region {
	if g.ystage == nil {
		g.ystage = gradMap{}
	}
	if g.ystage[layerIdx] == nil {
		g.ystage[layerIdx] = map[int]*region{}
	}
	if r := g.ystage[layerIdx][s]; r != nil {
		return r
	}
	r := g.al.alloc(tc, sl, fmt.Sprintf("fc%d.y%d", layerIdx, s), kindData)
	r.gens = g.opts.Minibatch
	g.ystage[layerIdx][s] = r
	return r
}

// fcEStage lazily allocates the per-slice backward staging buffer.
func (g *gen) fcEStage(layerIdx, s int, tc TileCoord, inLen int64) *region {
	if g.estage == nil {
		g.estage = gradMap{}
	}
	if g.estage[layerIdx] == nil {
		g.estage[layerIdx] = map[int]*region{}
	}
	if r := g.estage[layerIdx][s]; r != nil {
		return r
	}
	r := g.al.alloc(tc, inLen, fmt.Sprintf("fc%d.e%d", layerIdx, s), kindData)
	r.gens = g.opts.Minibatch
	g.estage[layerIdx][s] = r
	return r
}

// emitFCBPWG emits the FC-layer backward and weight-gradient templates for
// one image.
func (g *gen) emitFCBPWG(mi int, lm *LayerMap, img int) {
	l := lm.Layer
	inLen := int64(l.In.Elems())
	var prev *LayerMap
	if mi > 0 {
		prev = g.maps[mi-1]
	}
	for s := range lm.Homes {
		tc := g.fcComputeTile(lm, s)
		kBP := progKey{Row: tc.Row, CCol: tc.MCol, Step: sim.StepBP}
		kWG := progKey{Row: tc.Row, CCol: tc.MCol, Step: sim.StepWG}
		dw := g.grad[l.Index][s]
		eS := g.errDrv[mi][s][img]
		sl := int64(sliceLen(l.OutNeurons, len(lm.Homes), s))

		// BP: e_in partial = Wᵀ·e_slice. Each slice scatters its partial into
		// a private per-(unit, slice) region at the unit's home tile; the
		// owner sums them. Overwrite semantics per image keep every
		// iteration independent (accumulating in place would never reset).
		// Skipped at the first layer.
		if mi > 0 {
			eStage := g.fcEStage(l.Index, s, tc, inLen)
			g.em.sec = secIter
			wAddr, wPort, wAcc := g.weightOperand(l, s, 0)
			g.em.op(kBP, isa.MATMUL,
				[]opr{C(isa.ModeBwdData), wAddr, wPort, C(sl), C(inLen),
					C(eS.addr), C(isa.AbsTile(eS.tile)), C(eStage.addr), C(isa.PortLeft), C(0)},
				append(wAcc, rd(eS), wr(eStage))...)
			for gp := range prev.Homes {
				part := g.fcEPart(mi, l.Index, gp, s)
				off := outUnitOffset(prev, gp)
				g.em.op(kBP, isa.DMASTORE,
					[]opr{C(eStage.addr + off), C(isa.PortLeft), C(part.addr), C(isa.AbsTile(part.tile)), C(part.size), C(0)},
					rd(eStage), wr(part))
			}
		}

		// WG: dW_slice += e_slice ⊗ x (the paper's vector element-wise
		// multiply, Fig. 5).
		g.em.sec = secIter
		xStage := g.stage[l.Index][s]
		g.em.op(kWG, isa.VECMUL,
			[]opr{C(dw.addr), C(isa.PortLeft), C(eS.addr), C(isa.AbsTile(eS.tile)), C(sl),
				C(xStage.addr), C(isa.PortLeft), C(inLen)},
			rd(eS), rd(xStage), wr(dw))
		if img == g.opts.Minibatch-1 {
			g.emitWeightUpdateFor(kWG, l, s, dw)
		}
	}
	// Error finishing: the BP tile whose left MemHeavy tile homes each input
	// unit sums the per-slice partials and derives the consumable error.
	if mi > 0 {
		for gp, home := range prev.Homes {
			k := progKey{Row: home.Row, CCol: home.MCol, Step: sim.StepBP}
			eDrv := g.errDrv[mi-1][gp][img]
			g.em.sec = secIter
			for s := range lm.Homes {
				part := g.fcEPart(mi, l.Index, gp, s)
				g.em.op(k, isa.DMALOAD,
					[]opr{C(part.addr), C(isa.PortLeft), C(eDrv.addr), C(isa.PortLeft), C(part.size), C(boolFlag(s > 0))},
					rd(part), wr(eDrv))
			}
			act := g.maps[mi-1].Layer.Act
			if act != tensor.ActNone {
				y := g.feat[mi-1][gp][img]
				g.em.op(k, isa.NDACTFN,
					[]opr{C(isa.ActFnDerivBase + actFnKind(act)), C(y.addr), C(isa.PortLeft), C(eDrv.size), C(eDrv.addr), C(isa.PortLeft)},
					rd(y), wr(eDrv))
			}
		}
	}
}

// fcEPart lazily allocates the per-(input unit, slice) backward partial at
// the unit's home tile. One generation per image: a single writer and a
// single reader, overwritten each image.
func (g *gen) fcEPart(mi, layerIdx, gp, s int) *region {
	if g.epart == nil {
		g.epart = map[[3]int]*region{}
	}
	key := [3]int{layerIdx, gp, s}
	if r := g.epart[key]; r != nil {
		return r
	}
	prev := g.maps[mi-1]
	home := prev.Homes[gp]
	size := g.errDrv[mi-1][gp][0].size
	r := g.al.alloc(home, size, fmt.Sprintf("fc%d.ep%d.%d", layerIdx, gp, s), kindData)
	r.gens = g.opts.Minibatch
	g.epart[key] = r
	return r
}

// emitHead emits the error computation at the network output (§3.2.3): the
// final FP outputs are compared with the golden outputs fetched from
// external memory, and the difference becomes the BP seed.
func (g *gen) emitHead(img int) {
	mi := len(g.maps) - 1
	lm := g.maps[mi]
	lr1 := int64(1) << isa.WUpdateLRShift // learning rate 1.0: err -= golden
	for f, home := range lm.Homes {
		adj := TileCoord{Row: home.Row, MCol: home.MCol - 1}
		k := progKey{Row: adj.Row, CCol: adj.MCol, Step: sim.StepBP}
		gs := g.headStage(home)
		y := g.feat[mi][f][img]
		eRaw := g.errRaw[mi][f][img]
		g.em.sec = secIter
		// err = y
		g.em.op(k, isa.DMALOAD,
			[]opr{C(y.addr), C(isa.AbsTile(y.tile)), C(eRaw.addr), C(isa.AbsTile(eRaw.tile)), C(y.size), C(0)},
			rd(y), wr(eRaw))
		// err -= golden (WUPDATE with lr = 1.0)
		src := extGoldenBase + int64(img)*g.out.OutputElems + outUnitOffset(lm, f)
		g.em.op(k, isa.DMALOAD,
			[]opr{C(src), C(isa.PortExt), C(gs.addr), C(isa.AbsTile(gs.tile)), C(y.size), C(0)},
			wr(gs))
		g.em.op(k, isa.WUPDATE,
			[]opr{C(eRaw.addr), C(isa.AbsTile(eRaw.tile)), C(gs.addr), C(isa.AbsTile(gs.tile)), C(y.size), C(lr1)},
			rd(gs), wr(eRaw))
		g.finishErrorAbs(k, mi, f, img)
	}
}

// headStage lazily allocates the golden-output staging buffer per home tile.
func (g *gen) headStage(home TileCoord) *region {
	if g.gstage == nil {
		g.gstage = map[TileCoord]*region{}
	}
	if r := g.gstage[home]; r != nil {
		return r
	}
	lm := g.maps[len(g.maps)-1]
	r := g.al.alloc(home, featureElems(lm), lm.Layer.Name+".gstage", kindData)
	r.gens = g.opts.Minibatch
	g.gstage[home] = r
	return r
}

// finishErrorAbs is finishError addressed through absolute tile ports (used
// by the head, whose error ranges sit on the right flank).
func (g *gen) finishErrorAbs(k progKey, pi, f, img int) {
	eRaw := g.errRaw[pi][f][img]
	eDrv := g.errDrv[pi][f][img]
	g.em.op(k, isa.DMALOAD,
		[]opr{C(eRaw.addr), C(isa.AbsTile(eRaw.tile)), C(eDrv.addr), C(isa.AbsTile(eDrv.tile)), C(eRaw.size), C(0)},
		rd(eRaw), wr(eDrv))
	act := g.maps[pi].Layer.Act
	if act != tensor.ActNone {
		y := g.feat[pi][f][img]
		g.em.op(k, isa.NDACTFN,
			[]opr{C(isa.ActFnDerivBase + actFnKind(act)), C(y.addr), C(isa.AbsTile(y.tile)), C(eDrv.size), C(eDrv.addr), C(isa.AbsTile(eDrv.tile))},
			rd(y), wr(eDrv))
	}
}
