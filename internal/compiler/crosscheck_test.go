package compiler

import (
	"testing"

	"scaledeep/internal/arch"
	"scaledeep/internal/dnn"
	"scaledeep/internal/sim"
	"scaledeep/internal/tensor"
)

// TestSimulatedCyclesTrackAnalyticEstimate is the cross-check between the
// two methodology paths (DESIGN.md §5.6): the functional simulator's cycle
// count for one evaluation must agree with a first-principles estimate
// (FLOPs over array throughput, plus data movement) within a small factor.
// This guards against either path drifting into nonsense — e.g. the
// simulator forgetting array occupancy, or the timing model losing a factor
// of the clock.
func TestSimulatedCyclesTrackAnalyticEstimate(t *testing.T) {
	b := dnn.NewBuilder("xcheck")
	in := b.Input(3, 12, 12)
	c1 := b.Conv(in, "c1", 6, 3, 1, 1, tensor.ActReLU)
	c2 := b.Conv(c1, "c2", 8, 3, 1, 1, tensor.ActReLU)
	f1 := b.FC(c2, "f1", 10, tensor.ActNone)
	_ = f1
	net := b.Build()

	chip := testChip(6)
	e := dnn.NewExecutor(net, 3)
	e.NoBias = true
	inputs := mkInputs(net, 1, 5)
	opts := Options{Minibatch: 1, Training: false}
	_, _, st := runSim(t, net, chip, opts, e, inputs, nil)

	// Lower bound: the serially-slowest tile must at least stream the
	// network's MACs through one tile's array. Upper bound: all FP work done
	// by ONE array sequentially, plus generous data-movement slack.
	cost := dnn.NetworkCost(net)
	macs := float64(cost.StepFLOPs(dnn.FP)) / 2
	perCycle := float64(chip.CompHeavy.MACsPerCycle())
	serialAll := macs / perCycle

	if float64(st.Cycles) < serialAll/float64(chip.Cols*chip.Rows) {
		t.Errorf("simulated %d cycles is below any physical bound (%0.f serial / all tiles)",
			st.Cycles, serialAll)
	}
	if float64(st.Cycles) > serialAll*50 {
		t.Errorf("simulated %d cycles is wildly above the serial estimate %.0f — timing model drifted",
			st.Cycles, serialAll)
	}

	// The simulator's achieved-FLOPs accounting must cover the network's FP
	// FLOPs at least once (array ops count both multiplies and adds).
	if float64(st.FLOPs) < float64(cost.FLOPs[dnn.FP][dnn.KConv]) {
		t.Errorf("simulator recorded %d FLOPs, below the network's conv FP work", st.FLOPs)
	}
}

// TestPipelineOverlapAcrossImages checks that the compiled inter-layer
// pipeline (Fig. 10) actually overlaps work: simulating a 4-image minibatch
// must take well under 4× the single-image cycles.
func TestPipelineOverlapAcrossImages(t *testing.T) {
	net := convPoolFCNet()
	chip := testChip(8)
	e := dnn.NewExecutor(net, 3)
	e.NoBias = true

	run := func(mb int) int64 {
		inputs := mkInputs(net, mb, 5)
		opts := Options{Minibatch: mb, Training: false}
		_, _, st := runSim(t, net, chip, opts, e, inputs, nil)
		return int64(st.Cycles)
	}
	one := run(1)
	four := run(4)
	if four >= 4*one {
		t.Errorf("no pipeline overlap: 1 image %d cycles, 4 images %d", one, four)
	}
	if four < one {
		t.Errorf("4 images cheaper than 1: %d vs %d", four, one)
	}
	t.Logf("pipeline overlap: 1 image %d cycles, 4 images %d (%.2fx)", one, four, float64(four)/float64(one))
}

// TestTimingOnlyMatchesFunctionalCycles ensures the data-free timing mode
// reproduces the functional mode's cycle count exactly (same programs, same
// tracker schedule).
func TestTimingOnlyMatchesFunctionalCycles(t *testing.T) {
	net := convPoolFCNet()
	chip := testChip(8)
	e := dnn.NewExecutor(net, 3)
	e.NoBias = true
	inputs := mkInputs(net, 2, 5)
	opts := Options{Minibatch: 2, Training: false}

	c, err := Compile(net, chip, opts)
	if err != nil {
		t.Fatal(err)
	}
	runMode := func(functional bool) int64 {
		m := sim.NewMachine(chip, arch.Single, functional)
		if err := c.Install(m); err != nil {
			t.Fatal(err)
		}
		if err := c.LoadWeights(m, e); err != nil {
			t.Fatal(err)
		}
		if err := c.LoadInputs(m, inputs); err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return int64(st.Cycles)
	}
	fn := runMode(true)
	tm := runMode(false)
	if fn != tm {
		t.Errorf("functional %d cycles vs timing-only %d — modes must agree", fn, tm)
	}
}
