// Package compiler implements the two-phase ScaleDeep compiler of §4: the
// workload-mapping phase (STEP1–STEP6 of Fig. 13) that allocates chip
// columns to layers, distributes the network state across MemHeavy tiles and
// picks CompHeavy array configurations; and the code-generation phase that
// instantiates per-layer FP/BP/WG templates into one ScaleDeep program per
// CompHeavy tile, together with the data-flow tracker manifest that
// synchronizes them (§3.2.4).
package compiler

import (
	"fmt"

	"scaledeep/internal/arch"
	"scaledeep/internal/dnn"
)

// TileCoord addresses a MemHeavy tile on the chip grid.
type TileCoord struct {
	Row  int
	MCol int // MemHeavy column (compute column c has left MCol=c, right MCol=c+1)
}

// ArrayConfig is the CompHeavy 2D-array configuration chosen for a layer
// (§3.1.1: columns and lanes can be redistributed, and the array can split
// horizontally into two half-arrays).
type ArrayConfig struct {
	Cols  int
	Lanes int
	Split bool
}

// LayerMap is the mapping decision for one layer.
type LayerMap struct {
	Layer *dnn.Layer

	// Columns allocated to the layer (compute column indices, contiguous).
	Cols []int
	// MinCols is the memory-capacity-driven minimum (STEP3a).
	MinCols int

	// TrainFLOPs is the layer's FP+BP+WG FLOPs (STEP2).
	TrainFLOPs int64

	// Homes[f] is the home tile of output feature f (STEP4). For FC layers,
	// "features" are per-tile output-neuron slices.
	Homes []TileCoord

	// Array is the chosen CompHeavy configuration (STEP5).
	Array ArrayConfig

	// WeightsOnChip records STEP6's placement decision.
	WeightsOnChip bool
}

// Mapping is the output of the workload-mapping phase for one chip.
type Mapping struct {
	Net  *dnn.Network
	Chip arch.ChipConfig

	// Maps[i] corresponds to Net.Layers[i]; nil for the Input layer and for
	// layers fused into a predecessor.
	Maps []*LayerMap

	// TotalCols is the number of chip columns used.
	TotalCols int
}

// Map runs the workload-mapping phase for a network on a single chip.
// Networks too large for one chip are rejected here — spreading across
// multiple chips/chip clusters (§3.3) is handled by the analytic
// performance model (see DESIGN.md §4.4).
func Map(net *dnn.Network, chip arch.ChipConfig) (*Mapping, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if !net.IsLinearChain() {
		return nil, fmt.Errorf("compiler: %s is not a linear chain; functional compilation supports linear networks (DAGs run on the analytic model)", net.Name)
	}
	m := &Mapping{Net: net, Chip: chip, Maps: make([]*LayerMap, len(net.Layers))}

	// STEP1+2: designate layers and compute per-layer training FLOPs. On the
	// single-chip path every compute layer maps here; Softmax heads are
	// evaluated by the host (the golden-output error is injected at the
	// network output, §3.2.3).
	var mapped []*LayerMap
	for _, l := range net.Layers {
		switch l.Kind {
		case dnn.Input, dnn.Softmax:
			continue
		case dnn.Conv, dnn.Pool, dnn.FC:
			if err := checkFunctional(l); err != nil {
				return nil, err
			}
			lm := &LayerMap{Layer: l, TrainFLOPs: dnn.LayerCost(l).TotalFLOPs()}
			m.Maps[l.Index] = lm
			mapped = append(mapped, lm)
		default:
			return nil, fmt.Errorf("compiler: layer %s kind %v not supported by the functional backend", l.Name, l.Kind)
		}
	}
	if len(mapped) == 0 {
		return nil, fmt.Errorf("compiler: %s has no compute layers", net.Name)
	}

	// STEP3a: minimum columns per layer from memory capacity. Each layer's
	// MemHeavy tiles must hold its input features and errors, weights and
	// gradients, and the in-flight partial batches (§4.1).
	colCap := int64(chip.Rows) * int64(chip.MemHeavy.CapacityKB) * 1024
	for _, lm := range mapped {
		need := layerStateBytes(lm.Layer)
		lm.MinCols = int((need + colCap - 1) / colCap)
		if lm.MinCols < 1 {
			lm.MinCols = 1
		}
	}

	// STEP3b: load balancing. Allocate remaining columns greedily to the
	// layer with the highest column-load = normalized FLOPs / normalized
	// columns.
	used := 0
	alloc := make([]int, len(mapped))
	var totalFLOPs int64
	for i, lm := range mapped {
		alloc[i] = lm.MinCols
		used += lm.MinCols
		totalFLOPs += lm.TrainFLOPs
	}
	if used > chip.Cols {
		return nil, fmt.Errorf("compiler: %s needs %d columns but the chip has %d (use more chips via the analytic model)",
			net.Name, used, chip.Cols)
	}
	for used < chip.Cols {
		best, bestLoad := -1, -1.0
		for i, lm := range mapped {
			load := (float64(lm.TrainFLOPs) / float64(totalFLOPs)) / (float64(alloc[i]) / float64(chip.Cols))
			if load > bestLoad {
				best, bestLoad = i, load
			}
		}
		alloc[best]++
		used++
	}

	// Assign contiguous column ranges in layer order.
	next := 0
	for i, lm := range mapped {
		for c := 0; c < alloc[i]; c++ {
			lm.Cols = append(lm.Cols, next)
			next++
		}
	}
	m.TotalCols = next

	// STEP4: distribute output features and assign home tiles: feature f of
	// a layer homes on the left tiles of its consumer's columns (the
	// consumer reads them locally); the final layer's outputs home on its
	// own right flank.
	for i, lm := range mapped {
		var homeCols []int
		if i+1 < len(mapped) {
			homeCols = mapped[i+1].Cols
		} else {
			homeCols = []int{lm.Cols[len(lm.Cols)-1] + 1}
		}
		n := featureUnits(lm.Layer, chip, homeCols)
		lm.Homes = make([]TileCoord, n)
		for f := 0; f < n; f++ {
			idx := f % (chip.Rows * len(homeCols))
			lm.Homes[f] = TileCoord{Row: idx % chip.Rows, MCol: homeCols[idx/chip.Rows]}
		}
	}

	// STEP5: array configuration — lanes bounded by the layer's output
	// feature count so narrow layers redistribute lanes into columns.
	for _, lm := range mapped {
		lanes := chip.CompHeavy.Lanes
		if lm.Layer.Kind == dnn.Conv && lm.Layer.OutChannels < lanes {
			lanes = lm.Layer.OutChannels
		}
		if lm.Layer.Kind != dnn.Conv {
			lanes = 1
		}
		lm.Array = ArrayConfig{Cols: chip.CompHeavy.ArrayCols, Lanes: lanes}
	}

	// STEP6: weight placement. The functional single-chip backend keeps
	// weights on-chip when the per-tile share fits alongside features; the
	// allocator enforces the final decision, so this is a planning estimate.
	for _, lm := range mapped {
		lm.WeightsOnChip = lm.Layer.HasWeights()
	}
	return m, nil
}

// checkFunctional rejects layer variants the functional backend does not
// implement (they remain fully supported by the analytic model): grouped
// convolutions, ceil-mode pools, non-square geometry, and convolutions whose
// output grid does not tile the input exactly (the 2D-PE array's BP mode
// inverts the forward geometry, which requires exact tiling).
func checkFunctional(l *dnn.Layer) error {
	if l.SharedWith >= 0 {
		return fmt.Errorf("compiler: %s: weight-tied layers not supported functionally", l.Name)
	}
	switch l.Kind {
	case dnn.Conv:
		if l.Groups != 1 {
			return fmt.Errorf("compiler: %s: grouped convolution not supported functionally", l.Name)
		}
		if l.In.H != l.In.W || l.ConvP.KH != l.ConvP.KW || l.ConvP.StrideH != l.ConvP.StrideW || l.ConvP.PadH != l.ConvP.PadW {
			return fmt.Errorf("compiler: %s: non-square conv geometry", l.Name)
		}
		if (l.In.H+2*l.ConvP.PadH-l.ConvP.KH)%l.ConvP.StrideH != 0 {
			return fmt.Errorf("compiler: %s: conv geometry not exactly invertible (needed by BP)", l.Name)
		}
	case dnn.Pool:
		if l.PoolP.Ceiling {
			return fmt.Errorf("compiler: %s: ceil-mode pooling not supported functionally", l.Name)
		}
		if l.In.H != l.In.W {
			return fmt.Errorf("compiler: %s: non-square pool input", l.Name)
		}
	}
	return nil
}

// layerStateBytes estimates the MemHeavy bytes a layer needs (STEP3a): two
// copies of input features and errors, the partial batch under evaluation,
// and resident weights + gradients.
func layerStateBytes(l *dnn.Layer) int64 {
	feat := int64(l.In.Elems()) * 4
	state := 2*feat + 2*feat // features + errors, double-buffered
	state += 2 * int64(l.Out.Elems()) * 4
	if l.HasWeights() {
		state += 2 * l.WeightBytes()
	}
	return state
}

// featureUnits returns the number of distributable feature units a layer
// produces: channels for conv/pool layers, one per-home-tile neuron slice
// for FC layers.
func featureUnits(l *dnn.Layer, chip arch.ChipConfig, homeCols []int) int {
	switch l.Kind {
	case dnn.Conv, dnn.Pool:
		return l.Out.C
	case dnn.FC:
		n := chip.Rows * len(homeCols)
		if n > l.OutNeurons {
			n = l.OutNeurons
		}
		return n
	default:
		return 0
	}
}

// MappedLayers returns the mapped layers in network order.
func (m *Mapping) MappedLayers() []*LayerMap {
	var out []*LayerMap
	for _, lm := range m.Maps {
		if lm != nil {
			out = append(out, lm)
		}
	}
	return out
}

// HomeOf returns the home tile of feature f of layer index li.
func (m *Mapping) HomeOf(li, f int) TileCoord {
	lm := m.Maps[li]
	return lm.Homes[f%len(lm.Homes)]
}
