package compiler

import (
	"testing"

	"scaledeep/internal/dnn"
	"scaledeep/internal/tensor"
)

// TestAttributionInvariantEvalAndTraining pins the simulator's cycle
// accounting on real compiled workloads: every CompHeavy tile's attributed
// buckets must sum exactly to Stats.Cycles, for an eval run and a training
// run, so future engine changes can't silently leak cycles.
func TestAttributionInvariantEvalAndTraining(t *testing.T) {
	net := convPoolFCNet()
	e := dnn.NewExecutor(net, 42)
	e.NoBias = true
	inputs := mkInputs(net, 2, 7)
	golden := make([]*tensor.Tensor, 2)
	rng := tensor.NewRNG(13)
	for i := range golden {
		golden[i] = tensor.New(5)
		rng.FillUniform(golden[i], 1)
	}

	evalOpts := Options{Minibatch: 2, Iterations: 1, Training: false}
	_, _, st := runSim(t, net, testChip(8), evalOpts, e, inputs, nil)
	if err := st.CheckAttribution(); err != nil {
		t.Errorf("eval run: %v", err)
	}

	trainOpts := Options{Minibatch: 2, Iterations: 2, Training: true, LR: 0.015625}
	init := dnn.NewExecutor(net, 42)
	init.NoBias = true
	_, _, st = runSim(t, net, testChip(8), trainOpts, init, inputs, golden)
	if err := st.CheckAttribution(); err != nil {
		t.Errorf("training run: %v", err)
	}
	// A pipelined training run exercises every stall class the taxonomy
	// names except possibly NACK; spot-check the big ones.
	total := st.AttrTotal()
	if total[0] == 0 { // AttrCompute
		t.Errorf("training run attributed no compute cycles: %+v", total)
	}
}

// TestLayerTagsAlignWithPrograms checks the compiler's program→layer binding
// metadata: one tag per instruction, every mapped layer appears somewhere,
// and loop/barrier scaffolding stays untagged.
func TestLayerTagsAlignWithPrograms(t *testing.T) {
	net := convPoolFCNet()
	c, err := Compile(net, testChip(8), Options{Minibatch: 2, Iterations: 1, Training: true, LR: 0.015625})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.LayerTags) != len(c.Programs) {
		t.Fatalf("tags for %d programs, have %d programs", len(c.LayerTags), len(c.Programs))
	}
	seen := map[int]bool{}
	untagged := 0
	for k, p := range c.Programs {
		tags := c.LayerTags[k]
		if len(tags) != len(p.Instrs) {
			t.Fatalf("program %v: %d instrs but %d tags", k, len(p.Instrs), len(tags))
		}
		for _, tag := range tags {
			if tag < 0 {
				untagged++
				continue
			}
			if tag >= len(net.Layers) {
				t.Fatalf("tag %d out of range for %d layers", tag, len(net.Layers))
			}
			seen[tag] = true
		}
		// The trailing loop scaffolding (SUBRI/BGTZ/HALT) is never layer work.
		for i := len(tags) - 3; i < len(tags); i++ {
			if tags[i] != -1 {
				t.Fatalf("program %v: control instr %d tagged %d", k, i, tags[i])
			}
		}
	}
	for _, lm := range c.Mapping.MappedLayers() {
		if !seen[lm.Layer.Index] {
			t.Errorf("layer %s (index %d) has no tagged instructions", lm.Layer.Name, lm.Layer.Index)
		}
	}
	if untagged == 0 {
		t.Error("expected untagged scaffolding instructions")
	}
	if c.LayerName(-1) != "(other)" || c.LayerName(1) != net.Layers[1].Name {
		t.Errorf("LayerName mapping wrong: %q / %q", c.LayerName(-1), c.LayerName(1))
	}
}
