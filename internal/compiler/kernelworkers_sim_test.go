package compiler

import (
	"math"
	"testing"

	"scaledeep/internal/dnn"
	"scaledeep/internal/tensor"
)

// TestFunctionalSimWorkerInvariance runs the same compiled network through
// the functional simulator at several kernel worker-pool sizes and requires
// the outputs to match bit for bit — the determinism contract of the
// blocked kernel engine (parallelism only partitions disjoint output
// blocks; it never changes any reduction order).
func TestFunctionalSimWorkerInvariance(t *testing.T) {
	net := convPoolFCNet()
	inputs := mkInputs(net, 2, 19)
	opts := Options{Minibatch: 2, Iterations: 1, Training: false}

	run := func(workers int) [][]float32 {
		prev := tensor.SetKernelWorkers(workers)
		defer tensor.SetKernelWorkers(prev)
		e := dnn.NewExecutor(net, 42)
		e.NoBias = true
		c, m, _ := runSim(t, net, testChip(8), opts, e, inputs, nil)
		outs := make([][]float32, len(inputs))
		for i := range inputs {
			outs[i] = c.ReadOutput(m, i)
		}
		return outs
	}

	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d image %d: %d outputs vs %d", w, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if math.Float32bits(got[i][j]) != math.Float32bits(want[i][j]) {
					t.Fatalf("workers=%d image %d output %d: %v != %v (not bit-identical)",
						w, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}
