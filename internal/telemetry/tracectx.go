package telemetry

import (
	"sync"
	"time"
)

// Job-scoped distributed tracing. A JobTrace collects every span one service
// job produces — across the HTTP handler, the sweep engine's parallel
// workers, store lookups and simulator runs — and assembles them into one
// coherent Perfetto-loadable trace at job completion.
//
// The central design problem is determinism: sweep workers finish in
// arbitrary order, so naively appending spans to a shared ring (the old
// per-process Trace) interleaves them nondeterministically. A JobTrace
// instead partitions spans into lanes. A lane is a deterministic producer
// slot — grid-cell index ci for the sweep's class representatives, LaneJob
// for job-lifecycle spans — and every lane is only ever written by the one
// goroutine that owns its unit of work. Assemble concatenates lanes in lane
// order, each lane's spans in its own record order, so the assembled span
// list is a pure function of the job spec and the measured durations: the
// same job assembled at any -parallel worker count yields the same spans in
// the same order. (Timestamps are data — wall-clock offsets from the job
// base — so byte-identical traces additionally require a deterministic
// clock, which the tests pin with a fixed `now`.)
//
// Lanes are bounded (perLane spans); overflow increments a dropped counter
// that Assemble surfaces, so a truncated trace is detectable instead of
// silently misleading (see ChromeTraceMeta / trace.dropped_spans).

// LaneJob is the reserved lane for job-lifecycle spans (queue-wait, sweep,
// render, merge); it sorts before every cell lane.
const LaneJob = -1

// defaultPerLaneSpans bounds one lane of an unconfigured JobTrace: enough
// for a cell's coarse spans plus a short simulator span prefix.
const defaultPerLaneSpans = 4096

// JobTrace assembles one job's spans from concurrent lane producers.
type JobTrace struct {
	jobID string
	now   func() time.Time
	base  time.Time
	limit int

	mu       sync.Mutex
	lanes    map[int][]Span
	prefixes map[int]string // track prefix per lane, applied at assembly
	order    []int          // lane creation order, kept sorted at assembly
	dropped  int64
}

// NewJobTrace builds a collector for one job. perLane bounds each lane's
// span count (<= 0 selects a default); now supplies wall-clock time and may
// be nil for time.Now — tests pass a fixed clock to make assembled traces
// byte-identical across runs. The base timestamp (span time zero) is taken
// at creation.
func NewJobTrace(jobID string, perLane int, now func() time.Time) *JobTrace {
	if perLane <= 0 {
		perLane = defaultPerLaneSpans
	}
	if now == nil {
		now = time.Now
	}
	return &JobTrace{
		jobID:    jobID,
		now:      now,
		base:     now(),
		limit:    perLane,
		lanes:    map[int][]Span{},
		prefixes: map[int]string{},
	}
}

// JobID returns the job identifier stamped into the assembled trace.
func (jt *JobTrace) JobID() string { return jt.jobID }

// Context returns the trace context for one lane. prefix is prepended
// (with "/") to every recorded span's track, so a cell's simulator spans
// land on "cell/<name>/<tile>" tracks; parent is the span the lane hangs
// off (attached as an attribute on the lane's first span).
func (jt *JobTrace) Context(lane int, prefix string) TraceContext {
	return TraceContext{JobID: jt.jobID, Lane: lane, jt: jt, prefix: prefix}
}

// joinTrack prepends a track prefix ("" leaves the track unchanged).
func joinTrack(prefix, track string) string {
	if prefix == "" {
		return track
	}
	if track == "" {
		return prefix
	}
	return prefix + "/" + track
}

// record appends spans to a lane, enforcing the per-lane bound. The lane's
// track prefix is stored once and applied at assembly time, so the hot path
// (simulator span batches flushing mid-run) never builds track strings. A
// lane normally has a single producer and so a single prefix; if a second
// prefix ever shows up, the stored prefix is materialized onto the buffered
// spans and the lane switches to eager per-span prefixing.
func (jt *JobTrace) record(lane int, prefix string, spans ...Span) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	buf, ok := jt.lanes[lane]
	if !ok {
		jt.order = append(jt.order, lane)
		jt.prefixes[lane] = prefix
	}
	// Grow once, exactly: the simulator flushes spans in large batches, so
	// doubling-growth would allocate several times per flush.
	if need := len(buf) + len(spans); need > cap(buf) {
		if need > jt.limit {
			need = jt.limit
		}
		if need > cap(buf) {
			nb := make([]Span, len(buf), need)
			copy(nb, buf)
			buf = nb
		}
	}
	eager := prefix != jt.prefixes[lane]
	if eager {
		if p := jt.prefixes[lane]; p != "" {
			for i := range buf {
				buf[i].Track = joinTrack(p, buf[i].Track)
			}
		}
		jt.prefixes[lane] = ""
	}
	for _, s := range spans {
		if len(buf) >= jt.limit {
			jt.dropped++
			continue
		}
		if eager {
			s.Track = joinTrack(prefix, s.Track)
		}
		buf = append(buf, s)
	}
	jt.lanes[lane] = buf
}

// Dropped reports how many spans were discarded by per-lane bounds.
func (jt *JobTrace) Dropped() int64 {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return jt.dropped
}

// sinceBase returns the current offset from the job base in microseconds.
func (jt *JobTrace) sinceBase() int64 { return jt.now().Sub(jt.base).Microseconds() }

// Assemble returns the job's spans: lanes ascending (LaneJob first), each
// lane in record order. Each lane is owned by a single goroutine, so the
// result is deterministic regardless of how lanes were scheduled. The
// JobTrace remains usable after Assemble (late spans land in later
// assemblies).
func (jt *JobTrace) Assemble() []Span {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	// Insertion sort: the lane count is small and mostly pre-sorted.
	for i := 1; i < len(jt.order); i++ {
		for j := i; j > 0 && jt.order[j] < jt.order[j-1]; j-- {
			jt.order[j], jt.order[j-1] = jt.order[j-1], jt.order[j]
		}
	}
	var n int
	for _, lane := range jt.order {
		n += len(jt.lanes[lane])
	}
	out := make([]Span, 0, n)
	for _, lane := range jt.order {
		p := jt.prefixes[lane]
		for _, s := range jt.lanes[lane] {
			s.Track = joinTrack(p, s.Track)
			out = append(out, s)
		}
	}
	return out
}

// TraceContext addresses one lane of a JobTrace: the job ID, the lane, and
// the parent span ID spans in this lane hang off. It is a value type —
// copy it freely into worker goroutines; all mutation happens on the shared
// JobTrace under its lock. The zero TraceContext is disabled: every method
// is a cheap no-op, so producers can hold one unconditionally.
type TraceContext struct {
	JobID  string
	Lane   int
	Parent int64 // span ID of the parent span, 0 if none
	jt     *JobTrace
	prefix string
}

// Enabled reports whether spans recorded through this context go anywhere.
func (tc TraceContext) Enabled() bool { return tc.jt != nil }

// WithParent returns a copy whose spans reference parent's span ID.
func (tc TraceContext) WithParent(parent int64) TraceContext {
	tc.Parent = parent
	return tc
}

// RecordSpan records one span into the context's lane; the track is
// prefixed with the lane prefix. Implements SpanSink, so a simulator
// machine can emit directly into a job trace lane.
func (tc TraceContext) RecordSpan(s Span) {
	if tc.jt == nil {
		return
	}
	tc.jt.record(tc.Lane, tc.prefix, s)
}

// RecordSpans records a batch under one lock (SpanBatchSink).
func (tc TraceContext) RecordSpans(spans []Span) {
	if tc.jt == nil {
		return
	}
	tc.jt.record(tc.Lane, tc.prefix, spans...)
}

// Begin opens a wall-clock span at the current offset from the job base and
// returns the closure that ends it; attributes passed to either side are
// merged. The span is recorded at End time, preserving lane record order
// for nested spans ended in order.
func (tc TraceContext) Begin(name string, attrs ...Attr) func(endAttrs ...Attr) {
	if tc.jt == nil {
		return func(...Attr) {}
	}
	start := tc.jt.sinceBase()
	return func(endAttrs ...Attr) {
		end := tc.jt.sinceBase()
		all := attrs
		if len(endAttrs) > 0 {
			all = append(append([]Attr{}, attrs...), endAttrs...)
		}
		tc.jt.record(tc.Lane, tc.prefix, Span{
			Track: "", Name: name, Start: start, Dur: end - start, Attrs: all,
		})
	}
}

// Interval records a completed wall-clock span from explicit timestamps
// (e.g. queue wait between submit and dequeue), clamped at the job base.
func (tc TraceContext) Interval(name string, from, to time.Time, attrs ...Attr) {
	if tc.jt == nil {
		return
	}
	start := from.Sub(tc.jt.base).Microseconds()
	if start < 0 {
		start = 0
	}
	dur := to.Sub(from).Microseconds()
	if dur < 0 {
		dur = 0
	}
	tc.jt.record(tc.Lane, tc.prefix, Span{Name: name, Start: start, Dur: dur, Attrs: attrs})
}
