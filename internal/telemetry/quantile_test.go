package telemetry

import (
	"math"
	"testing"
)

func quantileHist() *Histogram {
	return newHistogram([]float64{1, 2, 4, 8})
}

func TestQuantileEmpty(t *testing.T) {
	h := quantileHist()
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("empty histogram quantile = %v, want NaN", v)
	}
}

func TestQuantileInterpolatesInsideBucket(t *testing.T) {
	h := quantileHist()
	// 10 observations all in bucket (1, 2]: ranks spread linearly across it.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if v := h.Quantile(0.5); v != 1.5 {
		t.Errorf("p50 = %v, want 1.5 (midpoint of (1,2])", v)
	}
	if v := h.Quantile(1); v != 2 {
		t.Errorf("p100 = %v, want upper edge 2", v)
	}
	if v := h.Quantile(0); v != 1 {
		t.Errorf("p0 = %v, want lower edge 1", v)
	}
}

func TestQuantileAtBucketEdges(t *testing.T) {
	h := quantileHist()
	// 4 observations, one per finite bucket: cumulative shares 25/50/75/100%.
	for _, v := range []float64{0.5, 1.5, 3, 6} {
		h.Observe(v)
	}
	cases := []struct{ q, want float64 }{
		{0.25, 1}, // exactly at the first bucket's upper edge
		{0.5, 2},
		{0.75, 4},
		{1, 8},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Halfway between the 25% and 50% edges interpolates inside (1, 2].
	if got := h.Quantile(0.375); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Quantile(0.375) = %v, want 1.5", got)
	}
}

func TestQuantileFirstBucketLowerEdgeIsZero(t *testing.T) {
	h := quantileHist()
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
	}
	// All mass in (−inf, 1]; non-negative-domain convention pins the lower
	// edge at 0, so the median interpolates to 0.5.
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("p50 = %v, want 0.5", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	h := quantileHist()
	for i := 0; i < 3; i++ {
		h.Observe(100) // beyond the last bound → overflow bucket
	}
	// No finite upper edge: the estimate clamps to the last finite bound.
	if got := h.Quantile(0.99); got != 8 {
		t.Errorf("overflow-bucket quantile = %v, want clamp to 8", got)
	}
}

func TestQuantileClampsQ(t *testing.T) {
	h := quantileHist()
	h.Observe(1.5)
	if got := h.Quantile(-3); got != 1 {
		t.Errorf("Quantile(-3) = %v, want 1", got)
	}
	if got := h.Quantile(7); got != 2 {
		t.Errorf("Quantile(7) = %v, want 2", got)
	}
}

func TestQuantileSnapshotMatchesLive(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q.test", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.2, 1.1, 1.9, 3, 5, 7, 9, 20} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms", len(snap.Histograms))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		live, snapQ := h.Quantile(q), snap.Histograms[0].Quantile(q)
		if math.Abs(live-snapQ) > 1e-12 {
			t.Errorf("q=%v: live %v != snapshot %v", q, live, snapQ)
		}
	}
}
