package telemetry

import (
	"math"
	"testing"
)

func quantileHist() *Histogram {
	return newHistogram([]float64{1, 2, 4, 8})
}

func TestQuantileEmpty(t *testing.T) {
	h := quantileHist()
	if v := h.Quantile(0.5); v != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", v)
	}
}

// TestQuantileEdgeCasesDefined pins the bug class sdprof tripped over: every
// q in [0, 1] must yield a finite, defined value on every well-formed
// histogram — empty, single-bucket (overflow only), or overflow-heavy — never
// NaN or ±Inf from interpolating against a missing edge.
func TestQuantileEdgeCasesDefined(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		observe []float64
		q       float64
		want    float64
	}{
		{"empty-q0", []float64{1, 2, 4, 8}, nil, 0, 0},
		{"empty-median", []float64{1, 2, 4, 8}, nil, 0.5, 0},
		{"empty-q1", []float64{1, 2, 4, 8}, nil, 1, 0},
		{"single-bucket-empty", nil, nil, 0.5, 0},
		{"single-bucket-observed", nil, []float64{3, 5, 7}, 0.5, 0},
		{"single-bucket-q1", nil, []float64{3}, 1, 0},
		{"overflow-only-q1", []float64{1, 2}, []float64{50, 60}, 1, 2},
		{"q0-lands-on-first-mass", []float64{1, 2, 4}, []float64{3}, 0, 2},
		{"q1-lands-on-last-mass", []float64{1, 2, 4}, []float64{0.5, 3}, 1, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newHistogram(c.bounds)
			for _, v := range c.observe {
				h.Observe(v)
			}
			got := h.Quantile(c.q)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("Quantile(%v) = %v, want a finite value", c.q, got)
			}
			if math.Abs(got-c.want) > 1e-12 {
				t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
			}
		})
	}
}

// TestQuantileSnapEdgeCases: the snapshot estimator shares the defined-value
// contract and reserves NaN for malformed documents only.
func TestQuantileSnapEdgeCases(t *testing.T) {
	empty := HistogramSnap{Buckets: []BucketSnap{{LE: "1"}, {LE: "+Inf"}}}
	for _, q := range []float64{0, 0.5, 1} {
		if v := empty.Quantile(q); v != 0 {
			t.Errorf("empty snapshot Quantile(%v) = %v, want 0", q, v)
		}
	}
	single := HistogramSnap{Buckets: []BucketSnap{{LE: "+Inf", Count: 5}}}
	if v := single.Quantile(0.5); v != 0 {
		t.Errorf("single-bucket snapshot Quantile(0.5) = %v, want 0", v)
	}
	malformed := HistogramSnap{Buckets: []BucketSnap{{LE: "not-a-number", Count: 1}, {LE: "+Inf"}}}
	if v := malformed.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("malformed snapshot Quantile(0.5) = %v, want NaN", v)
	}
	missingInf := HistogramSnap{Buckets: []BucketSnap{{LE: "1", Count: 1}}}
	if v := missingInf.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("snapshot without overflow bucket Quantile(0.5) = %v, want NaN", v)
	}
}

func TestQuantileInterpolatesInsideBucket(t *testing.T) {
	h := quantileHist()
	// 10 observations all in bucket (1, 2]: ranks spread linearly across it.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if v := h.Quantile(0.5); v != 1.5 {
		t.Errorf("p50 = %v, want 1.5 (midpoint of (1,2])", v)
	}
	if v := h.Quantile(1); v != 2 {
		t.Errorf("p100 = %v, want upper edge 2", v)
	}
	if v := h.Quantile(0); v != 1 {
		t.Errorf("p0 = %v, want lower edge 1", v)
	}
}

func TestQuantileAtBucketEdges(t *testing.T) {
	h := quantileHist()
	// 4 observations, one per finite bucket: cumulative shares 25/50/75/100%.
	for _, v := range []float64{0.5, 1.5, 3, 6} {
		h.Observe(v)
	}
	cases := []struct{ q, want float64 }{
		{0.25, 1}, // exactly at the first bucket's upper edge
		{0.5, 2},
		{0.75, 4},
		{1, 8},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Halfway between the 25% and 50% edges interpolates inside (1, 2].
	if got := h.Quantile(0.375); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Quantile(0.375) = %v, want 1.5", got)
	}
}

func TestQuantileFirstBucketLowerEdgeIsZero(t *testing.T) {
	h := quantileHist()
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
	}
	// All mass in (−inf, 1]; non-negative-domain convention pins the lower
	// edge at 0, so the median interpolates to 0.5.
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("p50 = %v, want 0.5", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	h := quantileHist()
	for i := 0; i < 3; i++ {
		h.Observe(100) // beyond the last bound → overflow bucket
	}
	// No finite upper edge: the estimate clamps to the last finite bound.
	if got := h.Quantile(0.99); got != 8 {
		t.Errorf("overflow-bucket quantile = %v, want clamp to 8", got)
	}
}

func TestQuantileClampsQ(t *testing.T) {
	h := quantileHist()
	h.Observe(1.5)
	if got := h.Quantile(-3); got != 1 {
		t.Errorf("Quantile(-3) = %v, want 1", got)
	}
	if got := h.Quantile(7); got != 2 {
		t.Errorf("Quantile(7) = %v, want 2", got)
	}
}

func TestQuantileSnapshotMatchesLive(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q.test", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.2, 1.1, 1.9, 3, 5, 7, 9, 20} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms", len(snap.Histograms))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		live, snapQ := h.Quantile(q), snap.Histograms[0].Quantile(q)
		if math.Abs(live-snapQ) > 1e-12 {
			t.Errorf("q=%v: live %v != snapshot %v", q, live, snapQ)
		}
	}
}
