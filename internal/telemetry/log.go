package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Structured lifecycle logging for the service layer: one JSON line per
// event (job accepted/started/cell done/evicted/errored), emitted through a
// stdlib slog JSONHandler. The schema is flat and stable:
//
//	{"time":"...","level":"INFO","msg":"job.done",
//	 "job":"job-000001","client":"ci","cells":4,"duration_ms":812}
//
// Every event names its subject with "msg" (dotted event name) and carries
// the job ID under "job" where one exists. CLIs expose the sink via
// -log-out (path, "-" for stderr; empty disables) and -log-level.

// ParseLogLevel maps a -log-level flag value onto a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a JSON-line logger writing to w at the given level.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// OpenLogger builds the logger behind the -log-out/-log-level flag pair:
// out is a file path ("-" means stderr; "" disables logging and returns a
// nil logger, which every consumer treats as off). The returned close
// function flushes and closes the underlying file (a no-op for stderr and
// the disabled case).
func OpenLogger(out, level string) (*slog.Logger, func() error, error) {
	nop := func() error { return nil }
	if out == "" {
		return nil, nop, nil
	}
	lvl, err := ParseLogLevel(level)
	if err != nil {
		return nil, nop, err
	}
	if out == "-" {
		return NewLogger(os.Stderr, lvl), nop, nil
	}
	f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nop, fmt.Errorf("telemetry: open log file: %w", err)
	}
	return NewLogger(f, lvl), f.Close, nil
}
