package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sim.nacks")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("sim.nacks") != c {
		t.Fatal("same name+labels did not return the same counter")
	}
	g := r.Gauge("sim.cycles")
	g.Set(1234.5)
	if got := g.Value(); got != 1234.5 {
		t.Fatalf("gauge = %v", got)
	}
}

func TestLabeledCountersAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("link.bytes", Label{Key: "link", Value: "comp-mem"})
	b := r.Counter("link.bytes", Label{Key: "link", Value: "mem-mem"})
	if a == b {
		t.Fatal("different labels returned the same counter")
	}
	a.Add(10)
	b.Add(20)
	// Label order must not matter.
	c := r.Counter("multi", Label{Key: "x", Value: "1"}, Label{Key: "y", Value: "2"})
	d := r.Counter("multi", Label{Key: "y", Value: "2"}, Label{Key: "x", Value: "1"})
	if c != d {
		t.Fatal("label order produced distinct counters")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op.cycles", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5556.5 {
		t.Fatalf("sum = %v", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	wantCounts := []int64{2, 1, 1, 2} // ≤1, ≤10, ≤100, +Inf
	if len(hs.Buckets) != len(wantCounts) {
		t.Fatalf("buckets = %v", hs.Buckets)
	}
	for i, want := range wantCounts {
		if hs.Buckets[i].Count != want {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hs.Buckets[i].Count, want, hs.Buckets)
		}
	}
	if hs.Buckets[3].LE != "+Inf" {
		t.Fatalf("overflow bucket LE = %q", hs.Buckets[3].LE)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("flops").Add(42)
	r.Gauge("util", Label{Key: "tile", Value: "comp[r0,c0,FP]"}).Set(0.75)
	r.Histogram("lat", []float64{2, 8}).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 42 {
		t.Fatalf("counters round-trip: %+v", back.Counters)
	}
	if len(back.Gauges) != 1 || back.Gauges[0].Labels["tile"] != "comp[r0,c0,FP]" {
		t.Fatalf("gauges round-trip: %+v", back.Gauges)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Fatalf("histograms round-trip: %+v", back.Histograms)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{10, 100})
	g := r.Gauge("g")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				g.Set(float64(w))
				// Lookup path must also be safe concurrently.
				r.Counter("c").Value()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d", h.Count())
	}
}
