package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sim.nacks")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("sim.nacks") != c {
		t.Fatal("same name+labels did not return the same counter")
	}
	g := r.Gauge("sim.cycles")
	g.Set(1234.5)
	if got := g.Value(); got != 1234.5 {
		t.Fatalf("gauge = %v", got)
	}
}

func TestLabeledCountersAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("link.bytes", Label{Key: "link", Value: "comp-mem"})
	b := r.Counter("link.bytes", Label{Key: "link", Value: "mem-mem"})
	if a == b {
		t.Fatal("different labels returned the same counter")
	}
	a.Add(10)
	b.Add(20)
	// Label order must not matter.
	c := r.Counter("multi", Label{Key: "x", Value: "1"}, Label{Key: "y", Value: "2"})
	d := r.Counter("multi", Label{Key: "y", Value: "2"}, Label{Key: "x", Value: "1"})
	if c != d {
		t.Fatal("label order produced distinct counters")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op.cycles", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5556.5 {
		t.Fatalf("sum = %v", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	wantCounts := []int64{2, 1, 1, 2} // ≤1, ≤10, ≤100, +Inf
	if len(hs.Buckets) != len(wantCounts) {
		t.Fatalf("buckets = %v", hs.Buckets)
	}
	for i, want := range wantCounts {
		if hs.Buckets[i].Count != want {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hs.Buckets[i].Count, want, hs.Buckets)
		}
	}
	if hs.Buckets[3].LE != "+Inf" {
		t.Fatalf("overflow bucket LE = %q", hs.Buckets[3].LE)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("flops").Add(42)
	r.Gauge("util", Label{Key: "tile", Value: "comp[r0,c0,FP]"}).Set(0.75)
	r.Histogram("lat", []float64{2, 8}).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 42 {
		t.Fatalf("counters round-trip: %+v", back.Counters)
	}
	if len(back.Gauges) != 1 || back.Gauges[0].Labels["tile"] != "comp[r0,c0,FP]" {
		t.Fatalf("gauges round-trip: %+v", back.Gauges)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Fatalf("histograms round-trip: %+v", back.Histograms)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{10, 100})
	g := r.Gauge("g")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				g.Set(float64(w))
				// Lookup path must also be safe concurrently.
				r.Counter("c").Value()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

func TestMergeFrom(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("jobs").Add(2)
	dst.Counter("bytes", Label{Key: "link", Value: "arc"}).Add(10)
	dst.Gauge("util").Set(0.25)
	dst.Histogram("lat", []float64{1, 10}).Observe(5)

	src := NewRegistry()
	src.Counter("jobs").Add(3)
	src.Counter("bytes", Label{Key: "link", Value: "ring"}).Add(7)
	src.Gauge("util").Set(0.75)
	h := src.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100)

	if err := dst.MergeFrom(src); err != nil {
		t.Fatal(err)
	}
	if got := dst.Counter("jobs").Value(); got != 5 {
		t.Fatalf("jobs = %d, want 5", got)
	}
	if got := dst.Counter("bytes", Label{Key: "link", Value: "arc"}).Value(); got != 10 {
		t.Fatalf("arc bytes = %d", got)
	}
	if got := dst.Counter("bytes", Label{Key: "link", Value: "ring"}).Value(); got != 7 {
		t.Fatalf("ring bytes = %d", got)
	}
	if got := dst.Gauge("util").Value(); got != 0.75 {
		t.Fatalf("gauge = %v, want last-merged 0.75", got)
	}
	m := dst.Histogram("lat", []float64{1, 10})
	if m.Count() != 3 || m.Sum() != 105.5 {
		t.Fatalf("histogram count=%d sum=%v, want 3/105.5", m.Count(), m.Sum())
	}
	// Self- and nil-merge are no-ops.
	if err := dst.MergeFrom(dst); err != nil {
		t.Fatal(err)
	}
	if err := dst.MergeFrom(nil); err != nil {
		t.Fatal(err)
	}
	if got := dst.Counter("jobs").Value(); got != 5 {
		t.Fatalf("self-merge changed jobs to %d", got)
	}
}

func TestMergeFromBoundsMismatch(t *testing.T) {
	dst := NewRegistry()
	dst.Histogram("lat", []float64{1, 10})
	src := NewRegistry()
	src.Histogram("lat", []float64{1, 20}).Observe(15)
	if err := dst.MergeFrom(src); err == nil {
		t.Fatal("expected bounds-mismatch error")
	}
	src2 := NewRegistry()
	src2.Histogram("lat", []float64{1}).Observe(0.5)
	if err := dst.MergeFrom(src2); err == nil {
		t.Fatal("expected bucket-count-mismatch error")
	}
}

func TestMergeOrderDeterministic(t *testing.T) {
	// Merging the same per-job registries in job order must yield identical
	// snapshots no matter how the jobs themselves completed.
	build := func() []*Registry {
		regs := make([]*Registry, 4)
		for i := range regs {
			r := NewRegistry()
			r.Counter("n").Add(int64(i + 1))
			r.Gauge("last").Set(float64(i))
			regs[i] = r
		}
		return regs
	}
	snap := func(regs []*Registry) string {
		dst := NewRegistry()
		for _, r := range regs {
			if err := dst.MergeFrom(r); err != nil {
				t.Fatal(err)
			}
		}
		var b strings.Builder
		if err := dst.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := snap(build()), snap(build())
	if a != b {
		t.Fatalf("merge not deterministic:\n%s\nvs\n%s", a, b)
	}
}
