package telemetry

import "sync"

// defaultTraceCapacity bounds an unconfigured trace: big sweeps would
// otherwise accumulate millions of spans.
const defaultTraceCapacity = 1 << 16

// Trace is a SpanSink backed by a bounded ring buffer: it keeps the most
// recent capacity spans and counts evictions, so a long run degrades to a
// trailing window instead of unbounded memory growth.
type Trace struct {
	mu      sync.Mutex
	buf     []Span
	head    int // index of the oldest span when full
	n       int // valid spans in buf
	dropped int64
}

// NewTrace returns a recorder keeping at most capacity spans
// (capacity <= 0 selects a generous default).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	return &Trace{buf: make([]Span, 0, capacity)}
}

// RecordSpan appends a span, evicting the oldest when full.
func (t *Trace) RecordSpan(s Span) {
	t.mu.Lock()
	if t.n < cap(t.buf) {
		t.buf = append(t.buf, s)
		t.n++
	} else {
		t.buf[t.head] = s
		t.head = (t.head + 1) % t.n
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order
// (oldest first).
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.head+i)%t.n])
	}
	return out
}

// Len returns the number of retained spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many spans were evicted to stay within capacity.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
