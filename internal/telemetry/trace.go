package telemetry

import "sync"

// defaultTraceCapacity bounds an unconfigured trace: big sweeps would
// otherwise accumulate millions of spans.
const defaultTraceCapacity = 1 << 16

// Trace is a SpanSink backed by a bounded ring buffer: it keeps the most
// recent capacity spans and counts evictions, so a long run degrades to a
// trailing window instead of unbounded memory growth.
type Trace struct {
	mu      sync.Mutex
	buf     []Span
	limit   int // maximum spans retained
	head    int // index of the oldest span when full
	n       int // valid spans in buf
	dropped int64
}

// NewTrace returns a recorder keeping at most capacity spans
// (capacity <= 0 selects a generous default). The buffer starts small and
// grows on demand up to the limit, so a large capacity costs nothing until
// spans actually accumulate.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	initial := capacity
	if initial > 256 {
		initial = 256
	}
	return &Trace{limit: capacity, buf: make([]Span, 0, initial)}
}

// record appends one span; the caller holds t.mu.
func (t *Trace) record(s Span) {
	if t.n < t.limit {
		t.buf = append(t.buf, s)
		t.n++
	} else {
		t.buf[t.head] = s
		t.head = (t.head + 1) % t.n
		t.dropped++
	}
}

// RecordSpan appends a span, evicting the oldest when full.
func (t *Trace) RecordSpan(s Span) {
	t.mu.Lock()
	t.record(s)
	t.mu.Unlock()
}

// RecordSpans appends a batch of spans under one lock — the flush target
// for producers that buffer spans locally (e.g. the simulator, which emits
// one batch per Run instead of locking per coarse op).
func (t *Trace) RecordSpans(spans []Span) {
	t.mu.Lock()
	if t.n+len(spans) <= t.limit {
		// Fast path: the whole batch fits — one bulk append.
		t.buf = append(t.buf, spans...)
		t.n += len(spans)
	} else {
		for _, s := range spans {
			t.record(s)
		}
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order
// (oldest first).
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.head+i)%t.n])
	}
	return out
}

// Len returns the number of retained spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many spans were evicted to stay within capacity.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
