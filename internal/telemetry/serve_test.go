package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, body
}

func wantJSON(t *testing.T, resp *http.Response, body []byte, path string) {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: Content-Type %q, want application/json", path, ct)
	}
	if !json.Valid(body) {
		t.Errorf("GET %s: body is not valid JSON: %s", path, body)
	}
}

func TestHTTPMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.flops").Add(42)
	tr := NewTrace(8)
	tr.RecordSpan(Span{Track: "tile", Name: "NDCONV", Start: 0, Dur: 10})
	pv := NewJSONVar(`{"state":"running"}`)

	srv := httptest.NewServer(NewHTTPMux(reg, tr, pv.Get))
	defer srv.Close()

	resp, body := get(t, srv, "/metrics")
	wantJSON(t, resp, body, "/metrics")
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "sim.flops" && c.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Errorf("/metrics missing sim.flops=42: %s", body)
	}

	resp, body = get(t, srv, "/trace")
	wantJSON(t, resp, body, "/trace")
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(events) == 0 {
		t.Error("/trace returned no events for a non-empty span buffer")
	}

	// /profile serves the placeholder until Set, then the published report.
	resp, body = get(t, srv, "/profile")
	wantJSON(t, resp, body, "/profile")
	var state map[string]string
	if err := json.Unmarshal(body, &state); err != nil || state["state"] != "running" {
		t.Errorf("/profile placeholder = %s, want {\"state\":\"running\"}", body)
	}
	pv.Set([]byte(`{"workload":"x"}`))
	resp, body = get(t, srv, "/profile")
	wantJSON(t, resp, body, "/profile")
	var doc map[string]string
	if err := json.Unmarshal(body, &doc); err != nil || doc["workload"] != "x" {
		t.Errorf("/profile after Set = %s, want the published document", body)
	}

	resp, body = get(t, srv, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/: status %d, %d bytes", resp.StatusCode, len(body))
	}
}

func TestHTTPMuxNilSources(t *testing.T) {
	srv := httptest.NewServer(NewHTTPMux(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/trace", "/profile"} {
		resp, body := get(t, srv, path)
		wantJSON(t, resp, body, path)
	}
}

// TestBackgroundServerDrainsInFlight pins the graceful-shutdown contract:
// a response in flight when Shutdown starts is delivered whole, and new
// connections are refused afterwards.
func TestBackgroundServerDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.Write([]byte("complete response body"))
	})
	bs, err := ServeBackground("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body []byte
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + bs.Addr() + "/slow")
		if err != nil {
			got <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body, err}
	}()

	<-started
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- bs.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight request, not kill it.
	release <- struct{}{}
	r := <-got
	if r.err != nil || string(r.body) != "complete response body" {
		t.Fatalf("in-flight response truncated by shutdown: body=%q err=%v", r.body, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + bs.Addr() + "/slow"); err == nil {
		t.Fatal("server accepted a connection after shutdown")
	}
}

func TestHTTPMuxMetricsContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.flops").Add(7)
	srv := httptest.NewServer(NewHTTPMux(reg, nil, nil))
	defer srv.Close()

	// Default stays JSON (backwards compatible).
	resp, body := get(t, srv, "/metrics")
	wantJSON(t, resp, body, "/metrics")

	// ?format=openmetrics switches to the text exposition.
	resp, body = get(t, srv, "/metrics?format=openmetrics")
	if ct := resp.Header.Get("Content-Type"); ct != OpenMetricsContentType {
		t.Errorf("openmetrics Content-Type = %q", ct)
	}
	fams, err := ParseOpenMetrics(body)
	if err != nil {
		t.Fatalf("/metrics?format=openmetrics is not valid OpenMetrics: %v\n%s", err, body)
	}
	found := false
	for _, f := range fams {
		if f.Name == "sim_flops" && f.Type == "counter" && f.Samples[0].Value == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("openmetrics exposition missing sim_flops: %s", body)
	}

	// Accept header negotiation.
	req, _ := http.NewRequest("GET", srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	aresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	abody, _ := io.ReadAll(aresp.Body)
	aresp.Body.Close()
	if _, err := ParseOpenMetrics(abody); err != nil {
		t.Errorf("Accept-negotiated exposition invalid: %v", err)
	}
	// Explicit ?format=json wins over Accept.
	req, _ = http.NewRequest("GET", srv.URL+"/metrics?format=json", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	jresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := io.ReadAll(jresp.Body)
	jresp.Body.Close()
	if !json.Valid(jbody) {
		t.Errorf("?format=json body is not JSON: %s", jbody)
	}
}

func TestHTTPMuxSurfacesDroppedSpans(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrace(2)
	for i := 0; i < 5; i++ {
		tr.RecordSpan(Span{Name: "s", Start: int64(i)})
	}
	srv := httptest.NewServer(NewHTTPMux(reg, tr, nil))
	defer srv.Close()

	// /metrics raises telemetry.trace.dropped_spans to the ring's count.
	_, body := get(t, srv, "/metrics?format=openmetrics")
	fams, err := ParseOpenMetrics(body)
	if err != nil {
		t.Fatal(err)
	}
	var dropped float64 = -1
	for _, f := range fams {
		if f.Name == "telemetry_trace_dropped_spans" {
			dropped = f.Samples[0].Value
		}
	}
	if dropped != 3 {
		t.Errorf("telemetry_trace_dropped_spans = %v, want 3", dropped)
	}

	// /trace carries the dropped count as a metadata event.
	_, body = get(t, srv, "/trace")
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatal(err)
	}
	foundMeta := false
	for _, ev := range events {
		if ev["name"] == "trace.dropped_spans" && ev["ph"] == "M" {
			args := ev["args"].(map[string]any)
			if args["dropped"] == "3" {
				foundMeta = true
			}
		}
	}
	if !foundMeta {
		t.Errorf("/trace missing trace.dropped_spans metadata: %s", body)
	}
}

func TestHTTPMuxScrapeHookAndStatusz(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(4)
	fr.Record(JobSummary{ID: "job-9", Outcome: "done"})
	hooked := 0
	srv := httptest.NewServer(NewHTTPMux(reg, nil, nil,
		WithScrapeHook(func(r *Registry) {
			hooked++
			r.Gauge("store.hit_rate").Set(0.75)
		}),
		WithFlight(fr),
	))
	defer srv.Close()

	_, body := get(t, srv, "/metrics?format=openmetrics")
	if hooked != 1 {
		t.Errorf("scrape hook calls = %d, want 1", hooked)
	}
	fams, err := ParseOpenMetrics(body)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fams {
		if f.Name == "store_hit_rate" && f.Samples[0].Value == 0.75 {
			found = true
		}
	}
	if !found {
		t.Errorf("scrape-hook gauge missing: %s", body)
	}

	resp, body := get(t, srv, "/statusz")
	wantJSON(t, resp, body, "/statusz")
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["retained"] != float64(1) {
		t.Errorf("/statusz = %s", body)
	}
}

func TestInstrumentRecordsPerEndpointTelemetry(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	mux.HandleFunc("GET /missing", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusNotFound)
	})
	srv := httptest.NewServer(Instrument(reg, mux))
	defer srv.Close()

	for _, p := range []string{"/jobs/a", "/jobs/b", "/missing"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	snap := reg.Snapshot()
	counts := map[string]int64{}
	for _, c := range snap.Counters {
		counts[fmt.Sprintf("%s|%s|%s", c.Name, c.Labels["route"], c.Labels["status"])] = c.Value
	}
	// Both /jobs/{id} hits collapse onto one route label.
	if counts["http.requests|GET /jobs/{id}|200"] != 2 {
		t.Errorf("request counts = %v", counts)
	}
	if counts["http.requests|GET /missing|404"] != 1 {
		t.Errorf("request counts = %v", counts)
	}
	var histN int64
	for _, h := range snap.Histograms {
		if h.Name == "http.request.seconds" && h.Labels["route"] == "GET /jobs/{id}" {
			histN = h.Count
		}
	}
	if histN != 2 {
		t.Errorf("latency histogram count = %d, want 2", histN)
	}
	for _, g := range snap.Gauges {
		if g.Name == "http.inflight" && g.Value != 0 {
			t.Errorf("http.inflight after requests = %v, want 0", g.Value)
		}
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	g := NewRegistry().Gauge("inflight")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if v := g.Value(); v != 0 {
		t.Errorf("gauge after balanced adds = %v, want 0", v)
	}
}

func TestHTTPMuxProfileError(t *testing.T) {
	srv := httptest.NewServer(NewHTTPMux(nil, nil, func() ([]byte, error) {
		return nil, fmt.Errorf("boom")
	}))
	defer srv.Close()
	resp, body := get(t, srv, "/profile")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("/profile with failing source: status %d, want 500", resp.StatusCode)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] != "boom" {
		t.Errorf("/profile error body = %s", body)
	}
}
