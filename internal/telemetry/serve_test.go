package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, body
}

func wantJSON(t *testing.T, resp *http.Response, body []byte, path string) {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: Content-Type %q, want application/json", path, ct)
	}
	if !json.Valid(body) {
		t.Errorf("GET %s: body is not valid JSON: %s", path, body)
	}
}

func TestHTTPMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.flops").Add(42)
	tr := NewTrace(8)
	tr.RecordSpan(Span{Track: "tile", Name: "NDCONV", Start: 0, Dur: 10})
	pv := NewJSONVar(`{"state":"running"}`)

	srv := httptest.NewServer(NewHTTPMux(reg, tr, pv.Get))
	defer srv.Close()

	resp, body := get(t, srv, "/metrics")
	wantJSON(t, resp, body, "/metrics")
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "sim.flops" && c.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Errorf("/metrics missing sim.flops=42: %s", body)
	}

	resp, body = get(t, srv, "/trace")
	wantJSON(t, resp, body, "/trace")
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(events) == 0 {
		t.Error("/trace returned no events for a non-empty span buffer")
	}

	// /profile serves the placeholder until Set, then the published report.
	resp, body = get(t, srv, "/profile")
	wantJSON(t, resp, body, "/profile")
	var state map[string]string
	if err := json.Unmarshal(body, &state); err != nil || state["state"] != "running" {
		t.Errorf("/profile placeholder = %s, want {\"state\":\"running\"}", body)
	}
	pv.Set([]byte(`{"workload":"x"}`))
	resp, body = get(t, srv, "/profile")
	wantJSON(t, resp, body, "/profile")
	var doc map[string]string
	if err := json.Unmarshal(body, &doc); err != nil || doc["workload"] != "x" {
		t.Errorf("/profile after Set = %s, want the published document", body)
	}

	resp, body = get(t, srv, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/: status %d, %d bytes", resp.StatusCode, len(body))
	}
}

func TestHTTPMuxNilSources(t *testing.T) {
	srv := httptest.NewServer(NewHTTPMux(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/trace", "/profile"} {
		resp, body := get(t, srv, path)
		wantJSON(t, resp, body, path)
	}
}

// TestBackgroundServerDrainsInFlight pins the graceful-shutdown contract:
// a response in flight when Shutdown starts is delivered whole, and new
// connections are refused afterwards.
func TestBackgroundServerDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.Write([]byte("complete response body"))
	})
	bs, err := ServeBackground("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body []byte
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + bs.Addr() + "/slow")
		if err != nil {
			got <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body, err}
	}()

	<-started
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- bs.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight request, not kill it.
	release <- struct{}{}
	r := <-got
	if r.err != nil || string(r.body) != "complete response body" {
		t.Fatalf("in-flight response truncated by shutdown: body=%q err=%v", r.body, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + bs.Addr() + "/slow"); err == nil {
		t.Fatal("server accepted a connection after shutdown")
	}
}

func TestHTTPMuxProfileError(t *testing.T) {
	srv := httptest.NewServer(NewHTTPMux(nil, nil, func() ([]byte, error) {
		return nil, fmt.Errorf("boom")
	}))
	defer srv.Close()
	resp, body := get(t, srv, "/profile")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("/profile with failing source: status %d, want 500", resp.StatusCode)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] != "boom" {
		t.Errorf("/profile error body = %s", body)
	}
}
