package telemetry

// Batched metric application: Registry.Apply folds a whole set of updates
// into the registry under one lock, allocating any missing entries from
// per-call slabs. This is the flush half of shadow-counter telemetry — a
// producer that buffered counts locally (e.g. the simulator's per-tile
// counters and per-run op histograms) publishes everything in one call
// instead of paying a lock/lookup/alloc cycle per metric.

// CounterUpdate raises one counter to at least Value (counters are
// monotonic, so re-applying the same aggregate is a no-op).
type CounterUpdate struct {
	Name   string
	Labels []Label
	Key    string // optional precomputed MetricKey; "" derives it
	Value  int64
}

// GaugeUpdate sets one gauge to Value.
type GaugeUpdate struct {
	Name   string
	Labels []Label
	Key    string
	Value  float64
}

// HistogramUpdate folds pre-aggregated bucket counts into one histogram
// (see Histogram.AddBatch). Bounds apply only on first creation.
type HistogramUpdate struct {
	Name   string
	Labels []Label
	Key    string
	Bounds []float64
	Counts []int64
	Sum    float64
	N      int64
}

// MetricKey returns the registry's internal identity for a (name, labels)
// pair, for callers that precompute Update.Key values once.
func MetricKey(name string, labels ...Label) string { return metricKey(name, labels) }

// Apply performs all updates under a single registry lock. Label slices of
// newly created metrics are retained, as with the per-metric lookups.
func (r *Registry) Apply(counters []CounterUpdate, gauges []GaugeUpdate, hists []HistogramUpdate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var cslab []counterEntry
	for _, u := range counters {
		key := u.Key
		if key == "" {
			key = metricKey(u.Name, u.Labels)
		}
		e, ok := r.counters[key]
		if !ok {
			if len(cslab) == 0 {
				cslab = make([]counterEntry, len(counters))
			}
			e = &cslab[0]
			cslab = cslab[1:]
			e.name, e.labels = u.Name, u.Labels
			r.counters[key] = e
		}
		if d := u.Value - e.c.Value(); d > 0 {
			e.c.Add(d)
		}
	}
	var gslab []gaugeEntry
	for _, u := range gauges {
		key := u.Key
		if key == "" {
			key = metricKey(u.Name, u.Labels)
		}
		e, ok := r.gauges[key]
		if !ok {
			if len(gslab) == 0 {
				gslab = make([]gaugeEntry, len(gauges))
			}
			e = &gslab[0]
			gslab = gslab[1:]
			e.name, e.labels = u.Name, u.Labels
			r.gauges[key] = e
		}
		e.g.Set(u.Value)
	}
	var hslab []histogramEntry
	for _, u := range hists {
		key := u.Key
		if key == "" {
			key = metricKey(u.Name, u.Labels)
		}
		e, ok := r.histograms[key]
		if !ok {
			if len(hslab) == 0 {
				hslab = make([]histogramEntry, len(hists))
			}
			e = &hslab[0]
			hslab = hslab[1:]
			e.name, e.labels = u.Name, u.Labels
			e.h = newHistogram(u.Bounds)
			r.histograms[key] = e
		}
		e.h.AddBatch(u.Counts, u.Sum, u.N)
	}
}
