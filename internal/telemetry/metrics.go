package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one dimension of a metric (e.g. {link, comp-mem}).
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop) — the shape inflight/queue-depth
// gauges need, where concurrent handlers increment on entry and decrement on
// exit and a Set would lose updates.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with bounds[i-1] < v ≤ bounds[i]; one overflow bucket
// catches everything above the last bound.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	counts  []atomic.Int64
	total   atomic.Int64
	sumBits atomic.Uint64 // float64 running sum, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// AddBatch folds pre-aggregated observations into the histogram: counts is
// indexed like the internal bucket array (one slot per bound plus the
// overflow bucket), n is the total observation count and sum their running
// sum. Hot paths that bucket locally (e.g. the simulator's per-run shadow
// histograms) flush through this instead of paying one atomic Observe per
// sample.
func (h *Histogram) AddBatch(counts []int64, sum float64, n int64) {
	if n == 0 {
		return
	}
	for i, c := range counts {
		if c != 0 && i < len(h.counts) {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry holds named, labeled metrics. Metric lookup takes a mutex;
// recording on a retrieved metric is lock-free, so hot paths should cache
// the *Counter / *Gauge / *Histogram they use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*counterEntry
	gauges     map[string]*gaugeEntry
	histograms map[string]*histogramEntry
}

type counterEntry struct {
	name   string
	labels []Label
	c      Counter
}

type gaugeEntry struct {
	name   string
	labels []Label
	g      Gauge
}

type histogramEntry struct {
	name   string
	labels []Label
	h      *Histogram
}

// NewRegistry returns an empty registry. Maps are pre-sized for a typical
// simulator publish so first-use metric creation does not grow them.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*counterEntry, 16),
		gauges:     make(map[string]*gaugeEntry, 8),
		histograms: make(map[string]*histogramEntry, 8),
	}
}

func metricKey(name string, labels []Label) string {
	switch len(labels) {
	case 0:
		return name
	case 1:
		// Common case (one label): a single-allocation concat, no sort.
		return name + "|" + labels[0].Key + "=" + labels[0].Value
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range sorted {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Counter returns the counter with the given name and labels, creating it on
// first use. The labels slice is retained on creation; callers must not
// mutate it afterwards (variadic call sites always satisfy this).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.counters[key]
	if !ok {
		e = &counterEntry{name: name, labels: labels}
		r.counters[key] = e
	}
	return &e.c
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.gauges[key]
	if !ok {
		e = &gaugeEntry{name: name, labels: labels}
		r.gauges[key] = e
	}
	return &e.g
}

// Histogram returns the histogram with the given name, bucket upper bounds
// and labels, creating it on first use. Bounds must be ascending; they are
// fixed at creation and ignored on subsequent lookups.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.histograms[key]
	if !ok {
		e = newHistogramEntry(name, labels, bounds)
		r.histograms[key] = e
	}
	return e.h
}

func newHistogramEntry(name string, labels []Label, bounds []float64) *histogramEntry {
	return &histogramEntry{name: name, labels: labels, h: newHistogram(bounds)}
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// MergeFrom folds src's metrics into r: counters add, histograms add their
// per-bucket counts and running sums, gauges take src's value (so when
// several registries are merged in sequence, the last merged gauge wins —
// callers wanting per-source gauges should label them per source). A
// histogram present in both registries must have identical bucket bounds.
//
// This is the aggregation step of a parallel sweep: each job records into an
// isolated registry (no cross-job lock contention, no interleaved label
// creation), and the engine merges them in job order at the end so the
// combined snapshot is deterministic regardless of completion order.
func (r *Registry) MergeFrom(src *Registry) error {
	if src == nil || src == r {
		return nil
	}
	type histCopy struct {
		name   string
		labels []Label
		bounds []float64
		counts []int64
		total  int64
		sum    float64
	}
	src.mu.Lock()
	type counterCopy struct {
		name   string
		labels []Label
		value  int64
	}
	ccs := make([]counterCopy, 0, len(src.counters))
	for _, e := range src.counters {
		ccs = append(ccs, counterCopy{e.name, e.labels, e.c.Value()})
	}
	type gaugeCopy struct {
		name   string
		labels []Label
		value  float64
	}
	gcs := make([]gaugeCopy, 0, len(src.gauges))
	for _, e := range src.gauges {
		gcs = append(gcs, gaugeCopy{e.name, e.labels, e.g.Value()})
	}
	hcs := make([]histCopy, 0, len(src.histograms))
	for _, e := range src.histograms {
		hc := histCopy{name: e.name, labels: e.labels, bounds: e.h.bounds,
			total: e.h.Count(), sum: e.h.Sum()}
		hc.counts = make([]int64, len(e.h.counts))
		for i := range e.h.counts {
			hc.counts[i] = e.h.counts[i].Load()
		}
		hcs = append(hcs, hc)
	}
	src.mu.Unlock()

	for _, c := range ccs {
		if c.value != 0 {
			r.Counter(c.name, c.labels...).Add(c.value)
		}
	}
	for _, g := range gcs {
		r.Gauge(g.name, g.labels...).Set(g.value)
	}
	for _, hc := range hcs {
		h := r.Histogram(hc.name, hc.bounds, hc.labels...)
		if len(h.bounds) != len(hc.bounds) {
			return fmt.Errorf("telemetry: merge of histogram %q: bucket count %d != %d", hc.name, len(h.bounds), len(hc.bounds))
		}
		for i, b := range h.bounds {
			if b != hc.bounds[i] {
				return fmt.Errorf("telemetry: merge of histogram %q: bound %v != %v", hc.name, b, hc.bounds[i])
			}
		}
		for i, c := range hc.counts {
			if c != 0 {
				h.counts[i].Add(c)
			}
		}
		if hc.total != 0 {
			h.total.Add(hc.total)
			for {
				old := h.sumBits.Load()
				next := math.Float64bits(math.Float64frombits(old) + hc.sum)
				if h.sumBits.CompareAndSwap(old, next) {
					break
				}
			}
		}
	}
	return nil
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// BucketSnap is one histogram bucket: the count of observations at or below
// the upper bound LE (exclusive of lower buckets); LE is "+Inf" for the
// overflow bucket. Counts are per-bucket, not cumulative.
type BucketSnap struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnap is one histogram in a snapshot.
type HistogramSnap struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []BucketSnap      `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric in a registry,
// marshalable with encoding/json.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot copies the registry's current values, sorted by name then label
// key for deterministic output.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for key, e := range r.counters {
		_ = key
		s.Counters = append(s.Counters, CounterSnap{Name: e.name, Labels: labelMap(e.labels), Value: e.c.Value()})
	}
	for _, e := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: e.name, Labels: labelMap(e.labels), Value: e.g.Value()})
	}
	for _, e := range r.histograms {
		hs := HistogramSnap{Name: e.name, Labels: labelMap(e.labels), Count: e.h.Count(), Sum: e.h.Sum()}
		for i := range e.h.counts {
			le := "+Inf"
			if i < len(e.h.bounds) {
				le = strconv.FormatFloat(e.h.bounds[i], 'g', -1, 64)
			}
			hs.Buckets = append(hs.Buckets, BucketSnap{LE: le, Count: e.h.counts[i].Load()})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sortSnaps(s.Counters, func(c CounterSnap) (string, map[string]string) { return c.Name, c.Labels })
	sortSnaps(s.Gauges, func(g GaugeSnap) (string, map[string]string) { return g.Name, g.Labels })
	sortSnaps(s.Histograms, func(h HistogramSnap) (string, map[string]string) { return h.Name, h.Labels })
	return s
}

func sortSnaps[T any](snaps []T, key func(T) (string, map[string]string)) {
	sort.Slice(snaps, func(i, j int) bool {
		ni, li := key(snaps[i])
		nj, lj := key(snaps[j])
		if ni != nj {
			return ni < nj
		}
		return fmt.Sprint(li) < fmt.Sprint(lj)
	})
}

// labelsFromMap rebuilds a label slice from a snapshot's map form, sorted
// by key so restored metrics land under the same registry keys the
// original ones did.
func labelsFromMap(m map[string]string) []Label {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	labels := make([]Label, len(keys))
	for i, k := range keys {
		labels[i] = Label{Key: k, Value: m[k]}
	}
	return labels
}

// Restore builds a registry whose contents equal the snapshot — the
// inverse of Registry.Snapshot, up to instrument creation order. It is the
// rehydration step for persisted metric snapshots (the result store keeps
// one per cached simulation): MergeFrom on a restored registry reproduces
// exactly the merge the original live registry would have contributed, so
// a cache hit and a fresh simulation yield byte-identical merged metrics.
func (s Snapshot) Restore() (*Registry, error) {
	r := NewRegistry()
	for _, c := range s.Counters {
		r.Counter(c.Name, labelsFromMap(c.Labels)...).Add(c.Value)
	}
	for _, g := range s.Gauges {
		r.Gauge(g.Name, labelsFromMap(g.Labels)...).Set(g.Value)
	}
	for _, hs := range s.Histograms {
		if len(hs.Buckets) == 0 {
			return nil, fmt.Errorf("telemetry: restore of histogram %q: no buckets", hs.Name)
		}
		bounds := make([]float64, 0, len(hs.Buckets)-1)
		counts := make([]int64, len(hs.Buckets))
		for i, b := range hs.Buckets {
			counts[i] = b.Count
			if b.LE == "+Inf" {
				if i != len(hs.Buckets)-1 {
					return nil, fmt.Errorf("telemetry: restore of histogram %q: +Inf bucket not last", hs.Name)
				}
				continue
			}
			v, err := strconv.ParseFloat(b.LE, 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: restore of histogram %q: bad bound %q", hs.Name, b.LE)
			}
			bounds = append(bounds, v)
		}
		h := r.Histogram(hs.Name, bounds, labelsFromMap(hs.Labels)...)
		h.AddBatch(counts, hs.Sum, hs.Count)
	}
	return r, nil
}

// WriteJSON writes an indented JSON snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
