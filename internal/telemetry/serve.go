package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// This file is the live observability endpoint: an http.ServeMux exposing
// the metrics registry, the span ring buffer, a pluggable profile document,
// and the stdlib pprof handlers — so a long simulation can be inspected
// while it runs (`sdsim -serve :6060`).

// ProfileFunc supplies the current bottleneck-profile JSON for /profile.
// It is called on every request and may return an evolving document.
type ProfileFunc func() ([]byte, error)

// JSONVar is a concurrency-safe holder for a JSON document that becomes
// available mid-run: Get serves a placeholder until Set publishes the real
// thing. Its Get method satisfies ProfileFunc.
type JSONVar struct {
	mu          sync.Mutex
	data        []byte
	placeholder []byte
}

// NewJSONVar builds a holder whose Get returns the placeholder object until
// Set is called.
func NewJSONVar(placeholder string) *JSONVar {
	return &JSONVar{placeholder: []byte(placeholder)}
}

// Set publishes the document.
func (v *JSONVar) Set(data []byte) {
	v.mu.Lock()
	v.data = data
	v.mu.Unlock()
}

// Get returns the published document, or the placeholder before Set.
func (v *JSONVar) Get() ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.data == nil {
		return v.placeholder, nil
	}
	return v.data, nil
}

// HandleJSON registers a JSON document endpoint on an observability mux —
// e.g. a sweep's live /progress document. fn follows the ProfileFunc
// contract and may return an evolving document; a nil fn serves a constant
// placeholder.
func HandleJSON(mux *http.ServeMux, path string, fn ProfileFunc) {
	mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if fn == nil {
			json.NewEncoder(w).Encode(map[string]string{"state": "unavailable"})
			return
		}
		data, err := fn()
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		w.Write(data)
	})
}

// MuxOption customises NewHTTPMux beyond the three core endpoints.
type MuxOption func(*muxConfig)

type muxConfig struct {
	scrapeHook func(*Registry)
	flight     *FlightRecorder
}

// WithScrapeHook registers a function called with the registry just before
// every /metrics scrape — the place to refresh derived gauges (store
// hit-rate, queue depth) so scraped values are current rather than
// last-event-stale.
func WithScrapeHook(fn func(*Registry)) MuxOption {
	return func(c *muxConfig) { c.scrapeHook = fn }
}

// WithFlight serves the flight recorder's recent-job table at /statusz.
func WithFlight(fr *FlightRecorder) MuxOption {
	return func(c *muxConfig) { c.flight = fr }
}

// wantsOpenMetrics decides the /metrics representation: OpenMetrics text
// when the client asks for it via ?format=openmetrics (or "om", or "text")
// or an Accept header naming application/openmetrics-text or text/plain;
// JSON (the historical format) otherwise.
func wantsOpenMetrics(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "openmetrics", "om", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "text/plain")
}

// NewHTTPMux builds the observability endpoint:
//
//	/metrics  — registry snapshot: JSON by default, OpenMetrics text under
//	            content negotiation (Accept: application/openmetrics-text
//	            or ?format=openmetrics)
//	/trace    — span buffer as Chrome trace-event JSON (Perfetto-loadable)
//	/profile  — whatever profileFn returns (JSON), e.g. the sdprof report
//	/statusz  — recent-job flight recorder (with WithFlight)
//	/debug/pprof/ — stdlib runtime profiling
//
// Any argument may be nil; the endpoint then serves an empty-but-valid JSON
// document. Counters and the span buffer are safe to read concurrently with
// a running producer, so the mux can be served while a simulation is in
// flight.
func NewHTTPMux(reg *Registry, tr *Trace, profileFn ProfileFunc, opts ...MuxOption) *http.ServeMux {
	var cfg muxConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		src := reg
		if src == nil {
			src = NewRegistry()
		}
		if tr != nil {
			// Surface the span ring's eviction count as a monotonic counter;
			// Apply raises to at-least-value, so concurrent scrapes are safe.
			src.Apply([]CounterUpdate{{Name: "telemetry.trace.dropped_spans", Value: tr.Dropped()}}, nil, nil)
		}
		if cfg.scrapeHook != nil {
			cfg.scrapeHook(src)
		}
		if wantsOpenMetrics(r) {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			if err := WriteOpenMetrics(w, src.Snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := src.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var spans []Span
		var meta TraceMeta
		if tr != nil {
			spans = tr.Spans()
			meta.DroppedSpans = tr.Dropped()
		}
		if err := WriteChromeTraceMeta(w, spans, meta); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	HandleJSON(mux, "/profile", profileFn)
	if cfg.flight != nil {
		mux.Handle("/statusz", cfg.flight)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPLatencyBuckets are the upper bounds (seconds) for per-endpoint
// request-latency histograms: sub-millisecond scrapes through multi-minute
// sweep jobs.
var HTTPLatencyBuckets = []float64{
	0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300,
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// Instrument wraps mux with per-endpoint request telemetry:
//
//	http.request.seconds{route=...}        latency histogram per route pattern
//	http.requests{route=...,status=...}    request counter
//	http.inflight                          gauge of concurrently-open requests
//
// The route label is the mux's registered pattern (via mux.Handler, so
// /jobs/{id} stays one label value instead of one per job), "unmatched" for
// requests no pattern claims. A nil registry returns mux unchanged.
func Instrument(reg *Registry, mux *http.ServeMux) http.Handler {
	if reg == nil {
		return mux
	}
	inflight := reg.Gauge("http.inflight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := "unmatched"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}
		inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			inflight.Add(-1)
			dur := time.Since(start).Seconds()
			reg.Histogram("http.request.seconds", HTTPLatencyBuckets,
				Label{Key: "route", Value: route}).Observe(dur)
			reg.Counter("http.requests",
				Label{Key: "route", Value: route},
				Label{Key: "status", Value: strconv.Itoa(sw.status)}).Inc()
		}()
		mux.ServeHTTP(sw, r)
	})
}

// BackgroundServer is an HTTP server running in a background goroutine
// with a graceful shutdown path — the lifecycle behind every CLI -serve
// flag. The old pattern (`go http.Serve(ln, mux)` + `select {}`) died on
// SIGINT with in-flight responses cut mid-body; Shutdown stops accepting,
// drains active requests up to a grace period, then returns.
type BackgroundServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan error
}

// ServeBackground listens on addr and serves mux in a background
// goroutine. The returned server's Addr reports the bound address (useful
// with ":0").
func ServeBackground(addr string, mux http.Handler) (*BackgroundServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	b := &BackgroundServer{
		srv:  &http.Server{Handler: mux},
		ln:   ln,
		done: make(chan error, 1),
	}
	go func() {
		err := b.srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		b.done <- err
	}()
	return b, nil
}

// Addr returns the bound listen address.
func (b *BackgroundServer) Addr() string { return b.ln.Addr().String() }

// Shutdown gracefully drains the server: no new connections, in-flight
// requests finish until ctx expires, then the serve goroutine's exit error
// (if any) is returned.
func (b *BackgroundServer) Shutdown(ctx context.Context) error {
	err := b.srv.Shutdown(ctx)
	if serr := <-b.done; err == nil {
		err = serr
	}
	return err
}

// ShutdownOnSignal blocks until SIGINT or SIGTERM (or until ctx is
// cancelled, whichever first) and then drains the server with the given
// grace period — the CLI stay-up phase: "endpoints stay up, Ctrl-C to
// drain and exit".
func (b *BackgroundServer) ShutdownOnSignal(ctx context.Context, grace time.Duration) error {
	sctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-sctx.Done()
	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return b.Shutdown(dctx)
}
