package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// This file is the live observability endpoint: an http.ServeMux exposing
// the metrics registry, the span ring buffer, a pluggable profile document,
// and the stdlib pprof handlers — so a long simulation can be inspected
// while it runs (`sdsim -serve :6060`).

// ProfileFunc supplies the current bottleneck-profile JSON for /profile.
// It is called on every request and may return an evolving document.
type ProfileFunc func() ([]byte, error)

// JSONVar is a concurrency-safe holder for a JSON document that becomes
// available mid-run: Get serves a placeholder until Set publishes the real
// thing. Its Get method satisfies ProfileFunc.
type JSONVar struct {
	mu          sync.Mutex
	data        []byte
	placeholder []byte
}

// NewJSONVar builds a holder whose Get returns the placeholder object until
// Set is called.
func NewJSONVar(placeholder string) *JSONVar {
	return &JSONVar{placeholder: []byte(placeholder)}
}

// Set publishes the document.
func (v *JSONVar) Set(data []byte) {
	v.mu.Lock()
	v.data = data
	v.mu.Unlock()
}

// Get returns the published document, or the placeholder before Set.
func (v *JSONVar) Get() ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.data == nil {
		return v.placeholder, nil
	}
	return v.data, nil
}

// HandleJSON registers a JSON document endpoint on an observability mux —
// e.g. a sweep's live /progress document. fn follows the ProfileFunc
// contract and may return an evolving document; a nil fn serves a constant
// placeholder.
func HandleJSON(mux *http.ServeMux, path string, fn ProfileFunc) {
	mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if fn == nil {
			json.NewEncoder(w).Encode(map[string]string{"state": "unavailable"})
			return
		}
		data, err := fn()
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		w.Write(data)
	})
}

// NewHTTPMux builds the observability endpoint:
//
//	/metrics  — registry snapshot (JSON)
//	/trace    — span buffer as Chrome trace-event JSON (Perfetto-loadable)
//	/profile  — whatever profileFn returns (JSON), e.g. the sdprof report
//	/debug/pprof/ — stdlib runtime profiling
//
// Any argument may be nil; the endpoint then serves an empty-but-valid JSON
// document. Counters and the span buffer are safe to read concurrently with
// a running producer, so the mux can be served while a simulation is in
// flight.
func NewHTTPMux(reg *Registry, tr *Trace, profileFn ProfileFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		src := reg
		if src == nil {
			src = NewRegistry()
		}
		if err := src.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var spans []Span
		if tr != nil {
			spans = tr.Spans()
		}
		if err := WriteChromeTrace(w, spans); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	HandleJSON(mux, "/profile", profileFn)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// BackgroundServer is an HTTP server running in a background goroutine
// with a graceful shutdown path — the lifecycle behind every CLI -serve
// flag. The old pattern (`go http.Serve(ln, mux)` + `select {}`) died on
// SIGINT with in-flight responses cut mid-body; Shutdown stops accepting,
// drains active requests up to a grace period, then returns.
type BackgroundServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan error
}

// ServeBackground listens on addr and serves mux in a background
// goroutine. The returned server's Addr reports the bound address (useful
// with ":0").
func ServeBackground(addr string, mux http.Handler) (*BackgroundServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	b := &BackgroundServer{
		srv:  &http.Server{Handler: mux},
		ln:   ln,
		done: make(chan error, 1),
	}
	go func() {
		err := b.srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		b.done <- err
	}()
	return b, nil
}

// Addr returns the bound listen address.
func (b *BackgroundServer) Addr() string { return b.ln.Addr().String() }

// Shutdown gracefully drains the server: no new connections, in-flight
// requests finish until ctx expires, then the serve goroutine's exit error
// (if any) is returned.
func (b *BackgroundServer) Shutdown(ctx context.Context) error {
	err := b.srv.Shutdown(ctx)
	if serr := <-b.done; err == nil {
		err = serr
	}
	return err
}

// ShutdownOnSignal blocks until SIGINT or SIGTERM (or until ctx is
// cancelled, whichever first) and then drains the server with the given
// grace period — the CLI stay-up phase: "endpoints stay up, Ctrl-C to
// drain and exit".
func (b *BackgroundServer) ShutdownOnSignal(ctx context.Context, grace time.Duration) error {
	sctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-sctx.Done()
	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return b.Shutdown(dctx)
}
