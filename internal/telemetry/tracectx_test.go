package telemetry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock yields a deterministic, strictly-advancing timeline.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func TestJobTraceLaneOrderIsDeterministic(t *testing.T) {
	jt := NewJobTrace("job-1", 0, nil)
	// Record into lanes out of order, as parallel workers would.
	jt.Context(2, "cell").RecordSpan(Span{Name: "c2"})
	jt.Context(0, "cell").RecordSpan(Span{Name: "c0"})
	jt.Context(LaneJob, "job").RecordSpan(Span{Name: "sweep"})
	jt.Context(1, "cell").RecordSpan(Span{Name: "c1"})
	jt.Context(0, "cell").RecordSpan(Span{Name: "c0b"})

	spans := jt.Assemble()
	var names []string
	for _, s := range spans {
		names = append(names, s.Name)
	}
	want := []string{"sweep", "c0", "c0b", "c1", "c2"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("assembled order = %v, want %v", names, want)
	}
	if spans[0].Track != "job" || spans[1].Track != "cell" {
		t.Errorf("track prefixes = %q, %q", spans[0].Track, spans[1].Track)
	}
}

func TestJobTraceTrackPrefixJoins(t *testing.T) {
	jt := NewJobTrace("job-1", 0, nil)
	jt.Context(0, "cell0").RecordSpan(Span{Track: "comp[r0,c0,FP]", Name: "conv"})
	spans := jt.Assemble()
	if got := spans[0].Track; got != "cell0/comp[r0,c0,FP]" {
		t.Errorf("track = %q, want cell0/comp[r0,c0,FP]", got)
	}
}

func TestJobTraceConcurrentLanesAssembleIdentically(t *testing.T) {
	// Same per-lane content recorded under different goroutine schedules
	// must assemble to the same byte sequence. The fake clock steps are
	// handed out per lane (not globally) to keep timestamps scheduling-free.
	build := func(workers int) []byte {
		jt := NewJobTrace("job-x", 0, nil)
		const lanes = 8
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for lane := range work {
					tc := jt.Context(lane, fmt.Sprintf("cell%d", lane))
					tc.RecordSpan(Span{Name: "store.get", Start: int64(lane), Dur: 1})
					tc.RecordSpan(Span{Name: "simulate", Start: int64(lane) + 1, Dur: 5})
				}
			}()
		}
		for lane := 0; lane < lanes; lane++ {
			work <- lane
		}
		close(work)
		wg.Wait()
		var buf bytes.Buffer
		if err := WriteChromeTraceMeta(&buf, jt.Assemble(), TraceMeta{Process: jt.JobID()}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := build(1)
	for _, workers := range []int{2, 7} {
		if got := build(workers); !bytes.Equal(got, one) {
			t.Errorf("trace bytes differ between 1 and %d workers:\n%s\nvs\n%s", workers, one, got)
		}
	}
}

func TestJobTracePerLaneBoundCountsDropped(t *testing.T) {
	jt := NewJobTrace("job-1", 2, nil)
	tc := jt.Context(0, "")
	for i := 0; i < 5; i++ {
		tc.RecordSpan(Span{Name: "s"})
	}
	if got := jt.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	if got := len(jt.Assemble()); got != 2 {
		t.Errorf("assembled spans = %d, want 2", got)
	}
	// Another lane still has full capacity.
	jt.Context(1, "").RecordSpan(Span{Name: "other"})
	if got := len(jt.Assemble()); got != 3 {
		t.Errorf("assembled spans after second lane = %d, want 3", got)
	}
}

func TestTraceContextBeginUsesClock(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	jt := NewJobTrace("job-1", 0, clk.Now) // base consumes one tick
	tc := jt.Context(LaneJob, "job")
	end := tc.Begin("sweep", Attr{Key: "cells", Value: "4"}) // tick 2
	end(Attr{Key: "outcome", Value: "ok"})                   // tick 3
	spans := jt.Assemble()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	s := spans[0]
	if s.Start != 1000 || s.Dur != 1000 {
		t.Errorf("span timing = start %d dur %d, want 1000/1000", s.Start, s.Dur)
	}
	if len(s.Attrs) != 2 || s.Attrs[0].Value != "4" || s.Attrs[1].Value != "ok" {
		t.Errorf("attrs = %v", s.Attrs)
	}
}

func TestTraceContextIntervalClampsAtBase(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	jt := NewJobTrace("job-1", 0, clk.Now)
	base := jt.base
	tc := jt.Context(LaneJob, "job")
	tc.Interval("queue.wait", base.Add(-time.Second), base.Add(2*time.Millisecond))
	s := jt.Assemble()[0]
	if s.Start != 0 {
		t.Errorf("start = %d, want clamp to 0", s.Start)
	}
	if s.Dur != 1002000 {
		t.Errorf("dur = %d, want 1002000", s.Dur)
	}
}

func TestZeroTraceContextIsNoOp(t *testing.T) {
	var tc TraceContext
	if tc.Enabled() {
		t.Error("zero TraceContext reports enabled")
	}
	tc.RecordSpan(Span{Name: "x"})
	tc.RecordSpans([]Span{{Name: "y"}})
	tc.Begin("z")()
	tc.Interval("w", time.Now(), time.Now())
	// Surviving to here without a nil deref is the assertion.
}

func TestJobTraceAssembleIsRepeatable(t *testing.T) {
	jt := NewJobTrace("job-1", 0, nil)
	jt.Context(1, "a").RecordSpan(Span{Name: "one"})
	first := jt.Assemble()
	jt.Context(0, "b").RecordSpan(Span{Name: "zero"})
	second := jt.Assemble()
	if len(first) != 1 || len(second) != 2 {
		t.Fatalf("lens = %d, %d", len(first), len(second))
	}
	if second[0].Name != "zero" || second[1].Name != "one" {
		t.Errorf("second assembly order = %v", second)
	}
}
