package telemetry

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestSnapshotRestoreRoundTrip pins the rehydration contract the result
// store depends on: snapshot → JSON → snapshot → Restore → merge must be
// indistinguishable from merging the original registry.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := NewRegistry()
	src.Counter("sim.cycles").Add(12345)
	src.Counter("sim.zero") // present but zero
	src.Counter("sweep.job.cycles", Label{Key: "job", Value: "simnet/baseline/mb2/eval"}).Add(99)
	src.Gauge("sim.pe_util").Set(0.8125)
	src.Gauge("sim.unset")
	h := src.Histogram("sim.op.cycles", []float64{1, 4, 16, 64})
	for _, v := range []float64{0.5, 3, 3, 17, 1000} {
		h.Observe(v)
	}
	src.Histogram("sim.empty", []float64{1, 2}, Label{Key: "k", Value: "v"})

	data, err := json.Marshal(src.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	restored, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}

	direct, viaRestore := NewRegistry(), NewRegistry()
	if err := direct.MergeFrom(src); err != nil {
		t.Fatal(err)
	}
	if err := viaRestore.MergeFrom(restored); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Snapshot(), viaRestore.Snapshot()) {
		t.Fatalf("merge of restored registry diverges:\n direct: %+v\nrestored: %+v",
			direct.Snapshot(), viaRestore.Snapshot())
	}

	// The restored registry itself also snapshots identically.
	if !reflect.DeepEqual(src.Snapshot(), restored.Snapshot()) {
		t.Fatalf("restored snapshot diverges:\n src: %+v\n restored: %+v",
			src.Snapshot(), restored.Snapshot())
	}
}

func TestSnapshotRestoreRejectsMalformed(t *testing.T) {
	bad := Snapshot{Histograms: []HistogramSnap{{
		Name:    "h",
		Buckets: []BucketSnap{{LE: "+Inf"}, {LE: "1"}},
	}}}
	if _, err := bad.Restore(); err == nil {
		t.Fatal("out-of-place +Inf bucket accepted")
	}
	bad = Snapshot{Histograms: []HistogramSnap{{
		Name:    "h",
		Buckets: []BucketSnap{{LE: "wat"}, {LE: "+Inf"}},
	}}}
	if _, err := bad.Restore(); err == nil {
		t.Fatal("unparseable bound accepted")
	}
}
