package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// ChromeEvent is one entry of the Chrome trace-event format (the JSON array
// flavor), loadable in Perfetto and chrome://tracing. Spans become complete
// events (ph "X"); track names become thread-name metadata events (ph "M").
type ChromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromePid is the single synthetic process all tracks live under.
const chromePid = 1

// ChromeTrace converts spans to Chrome trace events. Each distinct track
// becomes one thread (tid assigned by sorted track name, announced with a
// thread_name metadata event); spans are emitted in ascending start order.
// Negative starts or durations are clamped to 0 so the output always
// satisfies the viewer's expectations.
func ChromeTrace(spans []Span) []ChromeEvent {
	tracks := map[string]int{}
	for _, s := range spans {
		tracks[s.Track] = 0
	}
	names := make([]string, 0, len(tracks))
	for name := range tracks {
		names = append(names, name)
	}
	sort.Strings(names)
	events := make([]ChromeEvent, 0, len(spans)+len(names))
	for i, name := range names {
		tracks[name] = i + 1
		events = append(events, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: i + 1,
			Args: map[string]string{"name": name},
		})
	}
	ordered := append([]Span(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })
	for _, s := range ordered {
		ev := ChromeEvent{
			Name: s.Name, Ph: "X", Ts: max64(s.Start, 0), Dur: max64(s.Dur, 0),
			Pid: chromePid, Tid: tracks[s.Track],
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	return events
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MarshalChromeTrace renders spans as a Chrome trace-event JSON array.
func MarshalChromeTrace(spans []Span) ([]byte, error) {
	return json.Marshal(ChromeTrace(spans))
}

// WriteChromeTrace writes the Chrome trace-event JSON array for spans to w.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	data, err := MarshalChromeTrace(spans)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
