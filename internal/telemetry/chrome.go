package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// ChromeEvent is one entry of the Chrome trace-event format (the JSON array
// flavor), loadable in Perfetto and chrome://tracing. Spans become complete
// events (ph "X"); track names become thread-name metadata events (ph "M").
type ChromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromePid is the single synthetic process all tracks live under.
const chromePid = 1

// TraceMeta annotates a Chrome export with document-level metadata events.
type TraceMeta struct {
	// Process names the synthetic process (shown as the process row in
	// Perfetto) — job traces put the job ID here.
	Process string
	// DroppedSpans is the producer's eviction count. When non-zero the
	// export carries a "trace.dropped_spans" metadata event, so a truncated
	// trace is detectable from the file itself instead of silently
	// misleading.
	DroppedSpans int64
}

// ChromeTrace converts spans to Chrome trace events. Each distinct track
// becomes one thread (tid assigned by sorted track name, announced with a
// thread_name metadata event); spans are emitted in ascending start order.
// Negative starts or durations are clamped to 0 so the output always
// satisfies the viewer's expectations.
func ChromeTrace(spans []Span) []ChromeEvent {
	return ChromeTraceMeta(spans, TraceMeta{})
}

// ChromeTraceMeta is ChromeTrace plus document metadata (process name,
// dropped-span accounting).
func ChromeTraceMeta(spans []Span, meta TraceMeta) []ChromeEvent {
	tracks := map[string]int{}
	for _, s := range spans {
		tracks[s.Track] = 0
	}
	names := make([]string, 0, len(tracks))
	for name := range tracks {
		names = append(names, name)
	}
	sort.Strings(names)
	events := make([]ChromeEvent, 0, len(spans)+len(names)+2)
	if meta.Process != "" {
		events = append(events, ChromeEvent{
			Name: "process_name", Ph: "M", Pid: chromePid,
			Args: map[string]string{"name": meta.Process},
		})
	}
	if meta.DroppedSpans != 0 {
		events = append(events, ChromeEvent{
			Name: "trace.dropped_spans", Ph: "M", Pid: chromePid,
			Args: map[string]string{"dropped": strconv.FormatInt(meta.DroppedSpans, 10)},
		})
	}
	for i, name := range names {
		tracks[name] = i + 1
		events = append(events, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: i + 1,
			Args: map[string]string{"name": name},
		})
	}
	ordered := append([]Span(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })
	for _, s := range ordered {
		ev := ChromeEvent{
			Name: s.Name, Ph: "X", Ts: max64(s.Start, 0), Dur: max64(s.Dur, 0),
			Pid: chromePid, Tid: tracks[s.Track],
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	return events
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MarshalChromeTrace renders spans as a Chrome trace-event JSON array.
func MarshalChromeTrace(spans []Span) ([]byte, error) {
	return json.Marshal(ChromeTrace(spans))
}

// MarshalChromeTraceMeta renders spans plus document metadata.
func MarshalChromeTraceMeta(spans []Span, meta TraceMeta) ([]byte, error) {
	return json.Marshal(ChromeTraceMeta(spans, meta))
}

// WriteChromeTrace writes the Chrome trace-event JSON array for spans to w.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	return WriteChromeTraceMeta(w, spans, TraceMeta{})
}

// WriteChromeTraceMeta writes the Chrome trace-event JSON array for spans,
// annotated with document metadata, to w.
func WriteChromeTraceMeta(w io.Writer, spans []Span, meta TraceMeta) error {
	data, err := MarshalChromeTraceMeta(spans, meta)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
