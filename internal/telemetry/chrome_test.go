package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestChromeTraceJSONRoundTrip(t *testing.T) {
	spans := []Span{
		{Track: "comp[r0,c0,FP]", Name: "NDCONV", Start: 10, Dur: 40},
		{Track: "comp[r0,c0,FP]", Name: "STALL", Start: 50, Dur: 0,
			Attrs: []Attr{{Key: "note", Value: "read on tracker"}}},
		{Track: "comp[r0,c1,FP]", Name: "DMALOAD", Start: 5, Dur: 12},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	var xEvents, mEvents int
	for _, ev := range events {
		ts, _ := ev["ts"].(float64)
		dur, _ := ev["dur"].(float64)
		if ts < 0 || dur < 0 {
			t.Fatalf("negative ts/dur: %v", ev)
		}
		switch ev["ph"] {
		case "X":
			xEvents++
		case "M":
			mEvents++
			if ev["name"] != "thread_name" {
				t.Fatalf("unexpected metadata event %v", ev)
			}
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if xEvents != 3 {
		t.Fatalf("complete events = %d, want 3", xEvents)
	}
	if mEvents != 2 {
		t.Fatalf("thread_name events = %d, want 2 (one per track)", mEvents)
	}
}

func TestChromeTraceTracksGetDistinctTids(t *testing.T) {
	spans := []Span{
		{Track: "a", Name: "x", Start: 0, Dur: 1},
		{Track: "b", Name: "y", Start: 0, Dur: 1},
	}
	events := ChromeTrace(spans)
	tids := map[string]int{}
	for _, ev := range events {
		if ev.Ph == "M" {
			tids[ev.Args["name"]] = ev.Tid
		}
	}
	if tids["a"] == tids["b"] || tids["a"] == 0 || tids["b"] == 0 {
		t.Fatalf("tids = %v", tids)
	}
}

func TestChromeTraceClampsNegatives(t *testing.T) {
	events := ChromeTrace([]Span{{Track: "t", Name: "n", Start: -5, Dur: -1}})
	for _, ev := range events {
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("negative values not clamped: %+v", ev)
		}
	}
}

func TestChromeTraceAttrsBecomeArgs(t *testing.T) {
	events := ChromeTrace([]Span{{Track: "t", Name: "n", Start: 0, Dur: 1,
		Attrs: []Attr{{Key: "k", Value: "v"}}}})
	found := false
	for _, ev := range events {
		if ev.Ph == "X" && ev.Args["k"] == "v" {
			found = true
		}
	}
	if !found {
		t.Fatal("span attrs not rendered into args")
	}
}
