package telemetry

import (
	"sync"
	"testing"
)

func span(track string, start int64) Span {
	return Span{Track: track, Name: "op", Start: start, Dur: 1}
}

func TestTraceKeepsAllUnderCapacity(t *testing.T) {
	tr := NewTrace(4)
	for i := int64(0); i < 3; i++ {
		tr.RecordSpan(span("t", i))
	}
	got := tr.Spans()
	if len(got) != 3 || tr.Dropped() != 0 {
		t.Fatalf("spans = %d dropped = %d", len(got), tr.Dropped())
	}
	for i, s := range got {
		if s.Start != int64(i) {
			t.Fatalf("out of order: %+v", got)
		}
	}
}

func TestTraceRingEvictsOldest(t *testing.T) {
	tr := NewTrace(4)
	for i := int64(0); i < 10; i++ {
		tr.RecordSpan(span("t", i))
	}
	got := tr.Spans()
	if len(got) != 4 {
		t.Fatalf("kept %d spans, want 4", len(got))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	for i, s := range got {
		if s.Start != int64(6+i) {
			t.Fatalf("expected trailing window [6,10): %+v", got)
		}
	}
}

func TestTraceDefaultCapacity(t *testing.T) {
	tr := NewTrace(0)
	tr.RecordSpan(span("t", 1))
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestTraceConcurrentRecord(t *testing.T) {
	tr := NewTrace(128)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				tr.RecordSpan(span("t", i))
			}
		}()
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != workers*per {
		t.Fatalf("kept+dropped = %d, want %d", got, workers*per)
	}
}
