package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
)

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"":        slog.LevelInfo,
		"info":    slog.LevelInfo,
		"INFO":    slog.LevelInfo,
		"debug":   slog.LevelDebug,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"error":   slog.LevelError,
		" error ": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel accepted bogus level")
	}
}

func TestNewLoggerEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo)
	lg.Info("job.done", "job", "job-000001", "client", "ci", "cells", 4, "duration_ms", 812)
	lg.Debug("cell.done", "job", "job-000001") // below level, suppressed

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("log lines = %d, want 1 (debug suppressed); out: %s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	if rec["msg"] != "job.done" || rec["job"] != "job-000001" || rec["cells"] != float64(4) {
		t.Errorf("log record = %v", rec)
	}
	if _, ok := rec["time"]; !ok {
		t.Error("log record missing time")
	}
}

func TestOpenLogger(t *testing.T) {
	// Empty path disables — and must not create or touch any file (the
	// -log-out half of the empty-output-path contract; see internal/outfile).
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	lg, closeFn, err := OpenLogger("", "debug")
	if err != nil || lg != nil {
		t.Errorf("OpenLogger(\"\") = %v, %v; want nil logger", lg, err)
	}
	if err := closeFn(); err != nil {
		t.Errorf("disabled close: %v", err)
	}
	if entries, err := os.ReadDir(dir); err != nil || len(entries) != 0 {
		t.Errorf("OpenLogger(\"\") touched the filesystem: %v (err %v)", entries, err)
	}

	// Bad level errors.
	if _, _, err := OpenLogger("-", "loud"); err == nil {
		t.Error("OpenLogger accepted bogus level")
	}

	// File path appends JSON lines.
	path := filepath.Join(t.TempDir(), "svc.log")
	lg, closeFn, err = OpenLogger(path, "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("job.accepted", "job", "job-000002")
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	// Re-open appends rather than truncating.
	lg, closeFn, err = OpenLogger(path, "")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("job.done", "job", "job-000002")
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("log file lines = %d, want 2; contents: %s", len(lines), data)
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Errorf("line %q is not JSON: %v", line, err)
		}
	}
}
