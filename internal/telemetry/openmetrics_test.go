package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func omRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("sim.flops").Add(42)
	reg.Counter("sim.link.bytes", Label{Key: "link", Value: "comp-mem"}).Add(100)
	reg.Counter("sim.link.bytes", Label{Key: "link", Value: "ext"}).Add(7)
	reg.Gauge("sim.pe_utilization").Set(0.5)
	h := reg.Histogram("http.request.seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	return reg
}

func TestWriteOpenMetricsPinnedOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, omRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Emission order is counters, gauges, histograms, each sorted by name.
	want := strings.Join([]string{
		`# TYPE sim_flops counter`,
		`sim_flops_total 42`,
		`# TYPE sim_link_bytes counter`,
		`sim_link_bytes_total{link="comp-mem"} 100`,
		`sim_link_bytes_total{link="ext"} 7`,
		`# TYPE sim_pe_utilization gauge`,
		`sim_pe_utilization 0.5`,
		`# TYPE http_request_seconds histogram`,
		`http_request_seconds_bucket{le="0.01"} 1`,
		`http_request_seconds_bucket{le="0.1"} 2`,
		`http_request_seconds_bucket{le="1"} 2`,
		`http_request_seconds_bucket{le="+Inf"} 3`,
		`http_request_seconds_sum 5.055`,
		`http_request_seconds_count 3`,
		`# EOF`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestOpenMetricsRoundTripsThroughParser(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, omRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	families, err := ParseOpenMetrics(buf.Bytes())
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	byName := map[string]OMFamily{}
	for _, f := range families {
		byName[f.Name] = f
	}
	if f := byName["sim_flops"]; f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Errorf("sim_flops family = %+v", f)
	}
	if f := byName["sim_link_bytes"]; len(f.Samples) != 2 {
		t.Errorf("sim_link_bytes has %d samples, want 2", len(f.Samples))
	} else if f.Samples[0].Labels["link"] != "comp-mem" {
		t.Errorf("first sim_link_bytes sample labels = %v", f.Samples[0].Labels)
	}
	if f := byName["http_request_seconds"]; f.Type != "histogram" || len(f.Samples) != 6 {
		t.Errorf("histogram family = %+v", f)
	}
}

func TestOpenMetricsEscapesLabelValues(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("weird", Label{Key: "v", Value: "a\"b\\c\nd"}).Inc()
	reg.Counter("route", Label{Key: "r", Value: "GET /jobs/{id}"}).Inc()
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseOpenMetrics(buf.Bytes())
	if err != nil {
		t.Fatalf("escaped exposition does not parse: %v (doc: %q)", err, buf.String())
	}
	byName := map[string]OMFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if got := byName["weird"].Samples[0].Labels["v"]; got != "a\"b\\c\nd" {
		t.Errorf("label value round-trip = %q", got)
	}
	if got := byName["route"].Samples[0].Labels["r"]; got != "GET /jobs/{id}" {
		t.Errorf("braced label value round-trip = %q", got)
	}
}

func TestOpenMetricsGaugeSpecials(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("g.inf").Set(math.Inf(1))
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseOpenMetrics(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(fams[0].Samples[0].Value, 1) {
		t.Errorf("gauge +Inf round-trip = %v", fams[0].Samples[0].Value)
	}
}

func TestParseOpenMetricsRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing EOF":       "# TYPE a counter\na_total 1\n",
		"blank line":        "# TYPE a counter\n\na_total 1\n# EOF\n",
		"sample before":     "a_total 1\n# EOF\n",
		"duplicate family":  "# TYPE a counter\na_total 1\n# TYPE a counter\na_total 2\n# EOF\n",
		"counter no total":  "# TYPE a counter\na 1\n# EOF\n",
		"negative counter":  "# TYPE a counter\na_total -3\n# EOF\n",
		"foreign sample":    "# TYPE a counter\nb_total 1\n# EOF\n",
		"bad value":         "# TYPE a gauge\na zebra\n# EOF\n",
		"unterminated lbls": "# TYPE a gauge\na{x=\"1 2\n# EOF\n",
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n" +
			"h_sum 1\nh_count 3\n# EOF\n",
		"missing +Inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n# EOF\n",
		"count mismatch": "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\n" +
			"h_sum 1\nh_count 4\n# EOF\n",
		"le out of order": "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n# EOF\n",
		"empty": "",
	}
	for name, doc := range cases {
		if _, err := ParseOpenMetrics([]byte(doc)); err == nil {
			t.Errorf("%s: parser accepted malformed document %q", name, doc)
		}
	}
}

func TestParseOpenMetricsAcceptsHelpAndTimestamps(t *testing.T) {
	doc := "# HELP a helpful words here\n# TYPE a gauge\na{x=\"1\"} 2 1700000000\n# EOF\n"
	fams, err := ParseOpenMetrics([]byte(doc))
	if err != nil {
		t.Fatalf("HELP/timestamp document rejected: %v", err)
	}
	if fams[0].Samples[0].Value != 2 {
		t.Errorf("sample value = %v", fams[0].Samples[0].Value)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"sim.op.cycles":    "sim_op_cycles",
		"server.jobs":      "server_jobs",
		"9lead":            "_lead",
		"a-b c":            "a_b_c",
		"ok_name:sub":      "ok_name:sub",
		"telemetry.trace.": "telemetry_trace_",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
