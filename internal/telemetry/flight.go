package telemetry

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Flight recorder: a bounded ring of recent job summaries for post-mortems.
// Job state in the server is evicted once the job table fills, but the
// flight recorder keeps a compact latency-breakdown record of the last N
// jobs regardless — "what happened to job-000137 last night" stays
// answerable from /statusz after the job itself is gone.

// JobSummary is one completed (or failed/cancelled) job's post-mortem
// record: identity, outcome, and the latency breakdown.
type JobSummary struct {
	ID         string    `json:"id"`
	Client     string    `json:"client,omitempty"`
	SpecDigest string    `json:"spec_digest,omitempty"` // compact human-readable spec
	Outcome    string    `json:"outcome"`               // done | failed | cancelled
	Error      string    `json:"error,omitempty"`
	Cells      int       `json:"cells,omitempty"` // grid cells in the job
	Submitted  time.Time `json:"submitted"`
	QueueMS    int64     `json:"queue_ms"`  // submit → dequeue
	RunMS      int64     `json:"run_ms"`    // sweep execution
	RenderMS   int64     `json:"render_ms"` // result rendering + merge
	TotalMS    int64     `json:"total_ms"`  // submit → terminal state
}

// FlightRecorder keeps the most recent capacity job summaries.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []JobSummary
	head  int
	n     int
	total int64
}

// NewFlightRecorder returns a recorder keeping at most capacity summaries
// (<= 0 selects 64).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 64
	}
	return &FlightRecorder{buf: make([]JobSummary, capacity)}
}

// Record appends one summary, evicting the oldest when full.
func (fr *FlightRecorder) Record(s JobSummary) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.buf[(fr.head+fr.n)%len(fr.buf)] = s
	if fr.n < len(fr.buf) {
		fr.n++
	} else {
		fr.head = (fr.head + 1) % len(fr.buf)
	}
	fr.total++
}

// Summaries returns the retained summaries, most recent first.
func (fr *FlightRecorder) Summaries() []JobSummary {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]JobSummary, 0, fr.n)
	for i := fr.n - 1; i >= 0; i-- {
		out = append(out, fr.buf[(fr.head+i)%len(fr.buf)])
	}
	return out
}

// Total reports how many summaries were ever recorded (including evicted).
func (fr *FlightRecorder) Total() int64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// statuszDoc is the JSON shape of /statusz.
type statuszDoc struct {
	Retained int          `json:"retained"`
	Total    int64        `json:"total"`
	Jobs     []JobSummary `json:"jobs"`
}

// ServeHTTP renders the recorder as JSON (default, or Accept: application/
// json) or as a human-readable HTML table (Accept: text/html, ?format=html)
// — the post-mortem view for browsers.
func (fr *FlightRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	wantHTML := r.URL.Query().Get("format") == "html"
	if !wantHTML && r.URL.Query().Get("format") == "" {
		accept := r.Header.Get("Accept")
		wantHTML = strings.Contains(accept, "text/html") && !strings.Contains(accept, "application/json")
	}
	jobs := fr.Summaries()
	if !wantHTML {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(statuszDoc{Retained: len(jobs), Total: fr.Total(), Jobs: jobs})
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>statusz</title><style>" +
		"body{font-family:monospace}table{border-collapse:collapse}" +
		"td,th{border:1px solid #999;padding:2px 8px;text-align:right}" +
		"td:first-child,th:first-child,td.l,th.l{text-align:left}" +
		"tr.failed{background:#fdd}tr.cancelled{background:#eee}" +
		"</style></head><body>\n")
	fmt.Fprintf(&b, "<h1>recent jobs</h1><p>%d retained of %d total</p>\n", len(jobs), fr.Total())
	b.WriteString("<table><tr><th>id</th><th class=l>client</th><th class=l>spec</th>" +
		"<th class=l>outcome</th><th>cells</th><th>queue ms</th><th>run ms</th>" +
		"<th>render ms</th><th>total ms</th><th class=l>submitted</th><th class=l>error</th></tr>\n")
	for _, j := range jobs {
		fmt.Fprintf(&b,
			"<tr class=%q><td>%s</td><td class=l>%s</td><td class=l>%s</td><td class=l>%s</td>"+
				"<td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td class=l>%s</td><td class=l>%s</td></tr>\n",
			j.Outcome, html.EscapeString(j.ID), html.EscapeString(j.Client),
			html.EscapeString(j.SpecDigest), html.EscapeString(j.Outcome),
			j.Cells, j.QueueMS, j.RunMS, j.RenderMS, j.TotalMS,
			j.Submitted.UTC().Format(time.RFC3339), html.EscapeString(j.Error))
	}
	b.WriteString("</table></body></html>\n")
	w.Write([]byte(b.String()))
}
