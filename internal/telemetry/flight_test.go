package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderEvictsOldest(t *testing.T) {
	fr := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		fr.Record(JobSummary{ID: fmt.Sprintf("job-%d", i), Outcome: "done"})
	}
	got := fr.Summaries()
	if len(got) != 3 {
		t.Fatalf("retained = %d, want 3", len(got))
	}
	// Most recent first.
	for i, want := range []string{"job-4", "job-3", "job-2"} {
		if got[i].ID != want {
			t.Errorf("summaries[%d] = %s, want %s", i, got[i].ID, want)
		}
	}
	if fr.Total() != 5 {
		t.Errorf("total = %d, want 5", fr.Total())
	}
}

func TestFlightRecorderStatuszJSON(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(JobSummary{
		ID: "job-000001", Client: "ci", SpecDigest: "zoo:mlp net=mlp",
		Outcome: "done", Cells: 4, Submitted: time.Unix(1_700_000_000, 0).UTC(),
		QueueMS: 3, RunMS: 800, RenderMS: 9, TotalMS: 812,
	})
	req := httptest.NewRequest("GET", "/statusz", nil)
	rec := httptest.NewRecorder()
	fr.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var doc struct {
		Retained int          `json:"retained"`
		Total    int64        `json:"total"`
		Jobs     []JobSummary `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Retained != 1 || doc.Total != 1 || len(doc.Jobs) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	j := doc.Jobs[0]
	if j.ID != "job-000001" || j.QueueMS != 3 || j.RunMS != 800 || j.TotalMS != 812 {
		t.Errorf("job summary = %+v", j)
	}
}

func TestFlightRecorderStatuszHTML(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(JobSummary{ID: "job-1", Outcome: "failed", Error: `bad <spec> & "quotes"`})
	req := httptest.NewRequest("GET", "/statusz?format=html", nil)
	rec := httptest.NewRecorder()
	fr.ServeHTTP(rec, req)
	body := rec.Body.String()
	if !strings.Contains(rec.Header().Get("Content-Type"), "text/html") {
		t.Errorf("content type = %q", rec.Header().Get("Content-Type"))
	}
	if !strings.Contains(body, "<table>") || !strings.Contains(body, "job-1") {
		t.Errorf("HTML body missing table or job row:\n%s", body)
	}
	if strings.Contains(body, "<spec>") {
		t.Error("error text not HTML-escaped")
	}
	if !strings.Contains(body, "&lt;spec&gt;") {
		t.Error("escaped error text missing")
	}

	// Accept header also selects HTML.
	req = httptest.NewRequest("GET", "/statusz", nil)
	req.Header.Set("Accept", "text/html,application/xhtml+xml")
	rec = httptest.NewRecorder()
	fr.ServeHTTP(rec, req)
	if !strings.Contains(rec.Header().Get("Content-Type"), "text/html") {
		t.Errorf("Accept: text/html served %q", rec.Header().Get("Content-Type"))
	}
}
