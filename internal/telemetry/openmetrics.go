package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics text exposition of a registry snapshot, plus the validating
// parser the tests and CI use in place of promtool. The dialect is the
// OpenMetrics 1.0 subset Prometheus scrapes: one `# TYPE` line per family,
// counters exposed as `<name>_total`, histograms as cumulative `_bucket`
// series with `le` labels plus `_sum`/`_count`, and a final `# EOF`.
// Metric names are the registry's dotted names with every character outside
// [a-zA-Z0-9_:] mapped to '_' (sim.op.cycles → sim_op_cycles); quantiles
// are NOT exposed as synthetic series — scrape consumers derive them from
// the buckets, and in-process consumers call Histogram.Quantile.

// OpenMetricsContentType is the content type of the exposition format.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// sanitizeMetricName maps a registry metric name onto the OpenMetrics
// grammar: [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatLabels renders a label map (plus optional extra pairs) as
// {k="v",...} with keys sorted; empty input renders as "".
func formatLabels(labels map[string]string, extra ...Label) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	pairs := make([]Label, 0, len(labels)+len(extra))
	for k, v := range labels {
		pairs = append(pairs, Label{Key: k, Value: v})
	}
	pairs = append(pairs, extra...)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeMetricName(p.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatOMValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteOpenMetrics renders a snapshot in OpenMetrics text format. Families
// are emitted counters-first, then gauges, then histograms, each sorted by
// name (the snapshot is already sorted), so the output is deterministic for
// a given snapshot. The exposition always ends with "# EOF".
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)

	emitType := func(emitted map[string]bool, name, kind string) {
		if !emitted[name] {
			emitted[name] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", name, kind)
		}
	}

	counters := map[string]bool{}
	for _, c := range s.Counters {
		name := sanitizeMetricName(c.Name)
		emitType(counters, name, "counter")
		fmt.Fprintf(bw, "%s_total%s %d\n", name, formatLabels(c.Labels), c.Value)
	}
	gauges := map[string]bool{}
	for _, g := range s.Gauges {
		name := sanitizeMetricName(g.Name)
		emitType(gauges, name, "gauge")
		fmt.Fprintf(bw, "%s%s %s\n", name, formatLabels(g.Labels), formatOMValue(g.Value))
	}
	hists := map[string]bool{}
	for _, h := range s.Histograms {
		name := sanitizeMetricName(h.Name)
		emitType(hists, name, "histogram")
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := b.LE // bounds are already decimal strings; +Inf passes through
			fmt.Fprintf(bw, "%s_bucket%s %d\n", name,
				formatLabels(h.Labels, Label{Key: "le", Value: le}), cum)
		}
		fmt.Fprintf(bw, "%s_sum%s %s\n", name, formatLabels(h.Labels), formatOMValue(h.Sum))
		fmt.Fprintf(bw, "%s_count%s %d\n", name, formatLabels(h.Labels), h.Count)
	}
	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}

// OMSample is one parsed sample line.
type OMSample struct {
	Name   string // full sample name including _total/_bucket/_sum/_count suffix
	Labels map[string]string
	Value  float64
}

// OMFamily is one parsed metric family.
type OMFamily struct {
	Name    string // family name (no suffix)
	Type    string // counter | gauge | histogram
	Samples []OMSample
}

// ParseOpenMetrics validates an OpenMetrics text document and returns its
// families in exposition order. It enforces the invariants the exposition
// above relies on — and the ones a scraper would choke on:
//
//   - every sample belongs to the family declared by the preceding # TYPE
//     line, with only the suffixes its type allows;
//   - no family is declared twice;
//   - counter values are non-negative and counter samples carry _total;
//   - histogram bucket series are cumulative (non-decreasing in le order),
//     end with le="+Inf", and agree with _count;
//   - the document ends with exactly one "# EOF" line.
//
// This is the in-repo stand-in for promtool check metrics: strict enough to
// catch malformed output, dependency-free.
func ParseOpenMetrics(data []byte) ([]OMFamily, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1] // trailing newline
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("openmetrics: empty document")
	}
	if lines[len(lines)-1] != "# EOF" {
		return nil, fmt.Errorf("openmetrics: document does not end with # EOF")
	}
	lines = lines[:len(lines)-1]

	var (
		families []OMFamily
		cur      *OMFamily
		seen     = map[string]bool{}
	)
	finish := func() error {
		if cur == nil {
			return nil
		}
		if err := checkFamily(*cur); err != nil {
			return err
		}
		families = append(families, *cur)
		cur = nil
		return nil
	}
	for n, line := range lines {
		lineNo := n + 1
		switch {
		case line == "":
			return nil, fmt.Errorf("openmetrics: line %d: blank line", lineNo)
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("openmetrics: line %d: malformed TYPE line %q", lineNo, line)
			}
			name, kind := fields[2], fields[3]
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("openmetrics: line %d: unsupported type %q", lineNo, kind)
			}
			if seen[name] {
				return nil, fmt.Errorf("openmetrics: line %d: family %q declared twice", lineNo, name)
			}
			seen[name] = true
			if err := finish(); err != nil {
				return nil, err
			}
			cur = &OMFamily{Name: name, Type: kind}
		case strings.HasPrefix(line, "# HELP "), strings.HasPrefix(line, "# UNIT "):
			// Accepted, not retained.
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("openmetrics: line %d: stray comment %q (only TYPE/HELP/UNIT/EOF allowed)", lineNo, line)
		default:
			s, err := parseSampleLine(line)
			if err != nil {
				return nil, fmt.Errorf("openmetrics: line %d: %v", lineNo, err)
			}
			if cur == nil {
				return nil, fmt.Errorf("openmetrics: line %d: sample %q before any # TYPE", lineNo, s.Name)
			}
			if !sampleBelongs(cur.Name, cur.Type, s.Name) {
				return nil, fmt.Errorf("openmetrics: line %d: sample %q does not belong to %s family %q",
					lineNo, s.Name, cur.Type, cur.Name)
			}
			cur.Samples = append(cur.Samples, s)
		}
	}
	if err := finish(); err != nil {
		return nil, err
	}
	if len(families) == 0 {
		return nil, fmt.Errorf("openmetrics: no metric families")
	}
	return families, nil
}

// sampleBelongs reports whether sample name is valid inside a family of the
// given type.
func sampleBelongs(family, kind, sample string) bool {
	switch kind {
	case "counter":
		return sample == family+"_total"
	case "gauge":
		return sample == family
	case "histogram":
		switch sample {
		case family + "_bucket", family + "_sum", family + "_count":
			return true
		}
	}
	return false
}

// parseSampleLine parses `name{labels} value` (labels optional).
func parseSampleLine(line string) (OMSample, error) {
	s := OMSample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.Name = rest[:brace]
		// The closing brace must be found quote-aware: label values may
		// contain '}' (e.g. route="GET /jobs/{id}").
		end := labelSetEnd(rest, brace+1)
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabelSet(rest[brace+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("sample line %q has no value", line)
		}
		s.Name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if s.Name == "" || !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return s, fmt.Errorf("sample line %q has %d value fields", line, len(fields))
	}
	v, err := parseOMValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q", s.Name, fields[0])
	}
	s.Value = v
	return s, nil
}

// labelSetEnd returns the index of the '}' closing a label set that starts
// at s[from], skipping braces inside quoted label values; -1 if unclosed.
func labelSetEnd(s string, from int) int {
	inQuote := false
	for i := from; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parseOMValue(f string) (float64, error) {
	switch f {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(f, 64)
}

func validMetricName(name string) bool {
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return name != ""
}

// parseLabelSet parses `k="v",k2="v2"` handling escaped quotes/backslashes.
func parseLabelSet(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label set %q: missing =", s)
		}
		key := s[:eq]
		if !validMetricName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q: unquoted value", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %q: unterminated value", key)
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("label %q repeated", key)
		}
		labels[key] = val.String()
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("label set: expected , got %q", s)
			}
			s = s[1:]
		}
	}
	return labels, nil
}

// checkFamily enforces per-type value invariants after a family closes.
func checkFamily(f OMFamily) error {
	switch f.Type {
	case "counter":
		for _, s := range f.Samples {
			if s.Value < 0 {
				return fmt.Errorf("openmetrics: counter %s has negative value %v", f.Name, s.Value)
			}
		}
	case "histogram":
		// Group bucket series by their non-le labels and check each group:
		// cumulative in le order (exposition order), +Inf present and equal
		// to the matching _count.
		type group struct {
			lastCum  float64
			lastLE   float64
			hasInf   bool
			infValue float64
			n        int
		}
		groups := map[string]*group{}
		counts := map[string]float64{}
		groupKey := func(labels map[string]string) string {
			keys := make([]string, 0, len(labels))
			for k := range labels {
				if k != "le" {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			var b strings.Builder
			for _, k := range keys {
				fmt.Fprintf(&b, "%s=%q;", k, labels[k])
			}
			return b.String()
		}
		for _, s := range f.Samples {
			switch s.Name {
			case f.Name + "_bucket":
				le, ok := s.Labels["le"]
				if !ok {
					return fmt.Errorf("openmetrics: histogram %s bucket without le label", f.Name)
				}
				bound, err := parseOMValue(le)
				if err != nil {
					return fmt.Errorf("openmetrics: histogram %s: bad le %q", f.Name, le)
				}
				k := groupKey(s.Labels)
				g := groups[k]
				if g == nil {
					g = &group{lastLE: math.Inf(-1)}
					groups[k] = g
				}
				if g.hasInf {
					return fmt.Errorf("openmetrics: histogram %s: bucket after le=\"+Inf\"", f.Name)
				}
				if bound <= g.lastLE {
					return fmt.Errorf("openmetrics: histogram %s: le %q out of order", f.Name, le)
				}
				if s.Value < g.lastCum {
					return fmt.Errorf("openmetrics: histogram %s: bucket counts not cumulative at le %q", f.Name, le)
				}
				g.lastLE, g.lastCum, g.n = bound, s.Value, g.n+1
				if math.IsInf(bound, 1) {
					g.hasInf, g.infValue = true, s.Value
				}
			case f.Name + "_count":
				counts[groupKey(s.Labels)] = s.Value
			}
		}
		for k, g := range groups {
			if !g.hasInf {
				return fmt.Errorf("openmetrics: histogram %s: series %q missing le=\"+Inf\" bucket", f.Name, k)
			}
			if c, ok := counts[k]; ok && c != g.infValue {
				return fmt.Errorf("openmetrics: histogram %s: _count %v != +Inf bucket %v", f.Name, c, g.infValue)
			}
		}
	}
	return nil
}
