package telemetry

import (
	"math"
	"strconv"
)

// Histogram quantile estimation: the φ-quantile is located by rank walk over
// the bucket counts and linearly interpolated inside the bucket it lands in,
// the same estimator Prometheus' histogram_quantile uses. Buckets only know
// their bounds, so the estimate is exact at bucket edges and linear between
// them; observations in the overflow bucket are reported as the last finite
// bound (there is no upper edge to interpolate towards).

// quantileFromBuckets computes the q-quantile from per-bucket (non-
// cumulative) counts. bounds has one entry per finite bucket; counts has
// len(bounds)+1 entries, the last being the overflow bucket. The lower edge
// of the first bucket is taken as 0 when its bound is positive (every
// histogram in this repo observes non-negative magnitudes), else the bound
// itself.
//
// Every q in [0, 1] yields a finite value (out-of-range q is clamped): an
// empty histogram reports 0 — the lower edge of the domain — rather than
// NaN, so dashboards and report code can render quantiles without guarding
// every call, and a histogram whose only bucket is the overflow bucket
// (no finite bounds to interpolate against) reports 0 for the same reason.
func quantileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the (fractional) number of observations at or below the
	// quantile point. q=0 lands at the lower edge of the first non-empty
	// bucket, q=1 at the upper edge of the last.
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no finite upper edge. Report the last finite
			// bound — an underestimate, but a detectable one (callers can
			// compare against Count of the overflow bucket). With no finite
			// bounds at all there is nothing to anchor to; report 0.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		} else if bounds[0] < 0 {
			lower = bounds[0]
		}
		upper := bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lower + (upper-lower)*frac
	}
	// rank == total but loop exhausted (all trailing buckets empty): the
	// last non-empty bucket already returned above, so this is unreachable
	// unless total was consumed exactly; fall back to the last finite bound.
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the bucket the rank falls in.
// Always finite: an empty histogram reports 0. Concurrent-safe: bucket
// counts are read atomically (the estimate is a consistent-enough snapshot
// for monitoring; it never tears an individual counter).
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return quantileFromBuckets(h.bounds, counts, q)
}

// Quantile estimates the q-quantile of a snapshotted histogram — the
// offline counterpart of (*Histogram).Quantile, usable on persisted
// -metrics-out documents. NaN only for a malformed snapshot (unparsable
// or missing bucket bounds); well-formed snapshots always yield a finite
// value, 0 when empty.
func (hs HistogramSnap) Quantile(q float64) float64 {
	bounds := make([]float64, 0, len(hs.Buckets))
	counts := make([]int64, 0, len(hs.Buckets))
	for _, b := range hs.Buckets {
		counts = append(counts, b.Count)
		if b.LE == "+Inf" {
			continue
		}
		v, err := strconv.ParseFloat(b.LE, 64)
		if err != nil {
			return math.NaN()
		}
		bounds = append(bounds, v)
	}
	if len(counts) != len(bounds)+1 {
		return math.NaN()
	}
	return quantileFromBuckets(bounds, counts, q)
}
