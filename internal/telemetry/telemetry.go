// Package telemetry is the instrumentation layer shared by every subsystem:
// a metrics registry of labeled atomic counters, gauges and fixed-bucket
// histograms, snapshotable to JSON, plus a span recorder (named track +
// begin/duration + attributes) backed by a bounded ring buffer with drop
// accounting, exportable as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing.
//
// The paper's entire evaluation (Figs. 16-21) is built from per-tile
// utilization, stall, power-activity and link-bandwidth measurements; this
// package makes those measurements machine-readable and time-resolved
// instead of ad-hoc text.
//
// Design constraints:
//
//   - Zero overhead when disabled. Every producer holds a nil-able SpanSink
//     (or *Counter / *Histogram) and guards recording with a nil check; no
//     allocation, locking or formatting happens on the disabled path.
//   - Safe under concurrent recorders. Counters, gauges and histogram
//     buckets are atomics; the span ring buffer takes a short mutex per
//     record. Later parallel-simulation work can adopt the package
//     unchanged.
//
// Time units are producer-defined per track: simulator and cluster tracks
// record cycles, compiler and executor tracks record wall-clock
// microseconds. The Chrome exporter passes timestamps through verbatim.
package telemetry

// Attr is one key/value attribute attached to a span (rendered into the
// Chrome trace event's "args").
type Attr struct {
	Key   string
	Value string
}

// Span is one named interval on a named track: an op's execution on a tile,
// a collective transfer on a link, a compiler phase, a training epoch.
// Instant events (stalls) are spans with Dur == 0.
type Span struct {
	Track string // timeline the span belongs to (tile, link, phase group)
	Name  string // what happened (mnemonic, collective, phase)
	Start int64  // begin time in the track's unit (cycles or µs)
	Dur   int64  // duration in the same unit; 0 for instant events
	Attrs []Attr
}

// SpanSink receives spans from instrumented code. Producers hold a SpanSink
// and skip recording entirely when it is nil — callers must therefore never
// pass a typed-nil concrete value.
type SpanSink interface {
	RecordSpan(Span)
}

// SpanBatchSink is the optional bulk extension of SpanSink: sinks that can
// ingest a batch under one lock implement it (Trace does), and producers
// that buffer spans locally type-assert for it at flush time, falling back
// to per-span RecordSpan calls.
type SpanBatchSink interface {
	SpanSink
	RecordSpans([]Span)
}
