package scaledeep_test

import (
	"bytes"
	"testing"

	"scaledeep"
	"scaledeep/internal/tensor"
)

// The facade test doubles as executable documentation: the package-level
// quick-start must work exactly as written.
func TestQuickstartFlow(t *testing.T) {
	b := scaledeep.NewBuilder("mynet")
	in := b.Input(3, 32, 32)
	c1 := b.Conv(in, "c1", 16, 3, 1, 1, scaledeep.ReLU)
	p1 := b.MaxPool(c1, "p1", 2, 2)
	f1 := b.FC(p1, "f1", 10, scaledeep.NoAct)
	net := b.Softmax(f1).Build()

	perf, err := scaledeep.Model(net, scaledeep.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if perf.TrainImagesPerSec <= 0 || perf.EvalImagesPerSec <= perf.TrainImagesPerSec {
		t.Fatalf("throughput: train %v eval %v", perf.TrainImagesPerSec, perf.EvalImagesPerSec)
	}
	pb := scaledeep.AveragePower(perf, scaledeep.Baseline())
	if pb.Efficiency <= 0 {
		t.Fatalf("efficiency %v", pb.Efficiency)
	}
}

func TestBenchmarkAccess(t *testing.T) {
	if len(scaledeep.Benchmarks) != 11 {
		t.Fatalf("%d benchmarks", len(scaledeep.Benchmarks))
	}
	n := scaledeep.Benchmark("AlexNet")
	if n.TotalWeights() < 60_000_000 {
		t.Fatal("AlexNet weights off")
	}
}

func TestSimulateRoundTrip(t *testing.T) {
	b := scaledeep.NewBuilder("facade")
	in := b.Input(2, 8, 8)
	c1 := b.Conv(in, "c1", 4, 3, 1, 1, scaledeep.ReLU)
	f1 := b.FC(c1, "f1", 3, scaledeep.NoAct)
	_ = f1
	net := b.Build()

	chip := scaledeep.Baseline().Cluster.Conv
	chip.Rows, chip.Cols = 3, 4

	e := scaledeep.NewExecutor(net, 7)
	e.NoBias = true
	rng := tensor.NewRNG(9)
	inputs := []*scaledeep.Tensor{scaledeep.NewTensor(2, 8, 8)}
	rng.FillUniform(inputs[0], 1)

	c, m, st, err := scaledeep.Simulate(net, chip,
		scaledeep.CompileOptions{Minibatch: 1}, e, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	got := c.ReadOutput(m, 0)
	want := e.Forward(inputs[0])
	diff := tensor.MaxAbsDiff(tensor.FromSlice(got, len(got)), tensor.FromSlice(want.Data, want.Len()))
	if diff > 1e-4 {
		t.Fatalf("facade simulate output differs by %v", diff)
	}
}

func TestFacadeAblationsAndFabric(t *testing.T) {
	net := scaledeep.Benchmark("VGG-D")
	base, err := scaledeep.Model(net, scaledeep.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	wino, err := scaledeep.ModelWith(net, scaledeep.Baseline(), scaledeep.ModelOptions{Winograd: true})
	if err != nil {
		t.Fatal(err)
	}
	if wino.TrainImagesPerSec <= base.TrainImagesPerSec {
		t.Error("facade Winograd option had no effect")
	}
	fab := scaledeep.NewFabric(scaledeep.Baseline(), 64, 16)
	if cycles := fab.MinibatchBoundary(0.1); cycles <= 0 {
		t.Error("facade fabric boundary")
	}
}

func TestFacadeCheckpointRoundTrip(t *testing.T) {
	b := scaledeep.NewBuilder("ckpt")
	in := b.Input(1, 4, 4)
	f := b.FC(in, "f", 3, scaledeep.NoAct)
	net := b.Softmax(f).Build()
	src := scaledeep.NewExecutor(net, 5)
	var buf bytes.Buffer
	if err := scaledeep.SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := scaledeep.NewExecutor(net, 9)
	if err := scaledeep.LoadWeights(&buf, dst); err != nil {
		t.Fatal(err)
	}
	x := scaledeep.NewTensor(1, 4, 4)
	tensor.NewRNG(1).FillUniform(x, 1)
	if tensor.MaxAbsDiff(src.Forward(x), dst.Forward(x)) != 0 {
		t.Fatal("facade checkpoint round trip not exact")
	}
}
