package scaledeep_test

// The benchmark harness: one bench per table/figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each bench
// regenerates its artifact from the underlying models and reports the
// headline quantity as a custom metric, so `go test -bench=. -benchmem`
// doubles as the experiment runner. EXPERIMENTS.md records paper-vs-
// measured for every entry.

import (
	"context"
	"math"
	"testing"

	"scaledeep"
	"scaledeep/internal/arch"
	"scaledeep/internal/cluster"
	"scaledeep/internal/compiler"
	"scaledeep/internal/dnn"
	"scaledeep/internal/gpu"
	"scaledeep/internal/isa"
	"scaledeep/internal/perfmodel"
	"scaledeep/internal/power"
	"scaledeep/internal/report"
	"scaledeep/internal/sim"
	"scaledeep/internal/sweep"
	"scaledeep/internal/telemetry"
	"scaledeep/internal/tensor"
	"scaledeep/internal/workload"
	"scaledeep/internal/zoo"
)

// BenchmarkFig01_FLOPsGrowth regenerates Fig. 1 (FLOPs of ImageNet entries
// 2012-15) and reports the growth ratio the paper highlights (>10×).
func BenchmarkFig01_FLOPsGrowth(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		entries := workload.FLOPsGrowth(zoo.All())
		ratio = float64(entries[len(entries)-1].FLOPs) / float64(entries[0].FLOPs)
	}
	b.ReportMetric(ratio, "growth-x")
}

// BenchmarkFig04_OverFeatBreakdown regenerates Fig. 4 and reports the mid
// CONV layers' share of FP+BP FLOPs (paper: ~54%).
func BenchmarkFig04_OverFeatBreakdown(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		m := workload.ByClass(zoo.OverFeatFast())
		var total int64
		for _, cb := range m {
			total += cb.FLOPsFPBP
		}
		share = m[dnn.ClassMidConv].FPBPShare(total)
	}
	b.ReportMetric(100*share, "midconv-%")
}

// BenchmarkFig05_KernelSummary regenerates Fig. 5 and reports
// nD-convolution's share of total FLOPs (paper: 93.1%).
func BenchmarkFig05_KernelSummary(b *testing.B) {
	var convShare float64
	for i := 0; i < b.N; i++ {
		for _, r := range workload.KernelSummary(zoo.All()) {
			if r.Kernel == dnn.KConv {
				convShare = r.FLOPsShare
			}
		}
	}
	b.ReportMetric(100*convShare, "conv-%")
}

// BenchmarkFig08_ISA assembles and disassembles a full compiled program
// stream, exercising the 28-instruction ISA of Fig. 8.
func BenchmarkFig08_ISA(b *testing.B) {
	net := smallNet()
	chip := smallChip()
	c, err := compiler.Compile(net, chip, compiler.Options{Minibatch: 1, Training: true, LR: 0.0625})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	instrs := 0
	for i := 0; i < b.N; i++ {
		instrs = c.TotalInstructions()
		for _, p := range c.Programs {
			buf := isa.EncodeProgram(p)
			q, err := isa.DecodeProgram(p.Tile, buf)
			if err != nil || len(q.Instrs) != len(p.Instrs) {
				b.Fatal("round trip failed")
			}
		}
	}
	b.ReportMetric(float64(instrs), "instructions")
}

// BenchmarkFig13_Compile runs the two-phase compiler end to end (Fig. 13).
func BenchmarkFig13_Compile(b *testing.B) {
	net := smallNet()
	chip := smallChip()
	var progs int
	for i := 0; i < b.N; i++ {
		c, err := compiler.Compile(net, chip, compiler.Options{Minibatch: 2, Training: true, LR: 0.0625})
		if err != nil {
			b.Fatal(err)
		}
		progs = len(c.Programs)
	}
	b.ReportMetric(float64(progs), "programs")
}

// BenchmarkFig14_ConfigDerivation re-derives the Fig. 14 tables and reports
// node peak TFLOPs (paper: 680) and efficiency (paper: 485.7 GFLOPs/W).
func BenchmarkFig14_ConfigDerivation(b *testing.B) {
	var peak, eff float64
	for i := 0; i < b.N; i++ {
		n := arch.Baseline()
		peak = n.PeakFLOPs()
		eff = n.Efficiency()
	}
	b.ReportMetric(peak/1e12, "peak-TFLOPs")
	b.ReportMetric(eff/1e9, "GFLOPs/W")
}

// BenchmarkFig15_BenchmarkTable rebuilds all 11 networks and reports the
// total weight count of the suite.
func BenchmarkFig15_BenchmarkTable(b *testing.B) {
	var weights int64
	for i := 0; i < b.N; i++ {
		weights = 0
		for _, n := range zoo.All() {
			weights += n.TotalWeights()
		}
	}
	b.ReportMetric(float64(weights)/1e6, "suite-Mweights")
}

// BenchmarkFig16_SinglePrecision models the full suite on the SP node and
// reports the geomean utilization (paper: 0.35) and AlexNet training
// throughput.
func BenchmarkFig16_SinglePrecision(b *testing.B) {
	benchPerfFigure(b, arch.Baseline())
}

// BenchmarkFig17_HalfPrecision models the suite on the FP16 node (paper:
// 1.85× over single precision).
func BenchmarkFig17_HalfPrecision(b *testing.B) {
	benchPerfFigure(b, arch.HalfPrecision())
}

func benchPerfFigure(b *testing.B, node arch.NodeConfig) {
	b.Helper()
	var geo, alex float64
	for i := 0; i < b.N; i++ {
		rows, err := report.ModelSuite(node)
		if err != nil {
			b.Fatal(err)
		}
		var s float64
		for _, r := range rows {
			s += math.Log(r.Perf.Utilization)
			if r.Name == "AlexNet" {
				alex = r.Perf.TrainImagesPerSec
			}
		}
		geo = math.Exp(s / float64(len(rows)))
	}
	b.ReportMetric(geo, "geomean-util")
	b.ReportMetric(alex, "alexnet-img/s")
}

// BenchmarkFig18_GPUSpeedup computes the chip-cluster vs TitanX speedups —
// one sweep-engine job per network — and reports the cuDNN-R2 geomean
// (paper band: 22×-28×).
func BenchmarkFig18_GPUSpeedup(b *testing.B) {
	cluster := arch.Baseline()
	cluster.NumClusters = 1
	var geo float64
	for i := 0; i < b.N; i++ {
		speedups, err := sweep.Map(context.Background(), gpu.Networks, sweep.Options{},
			func(_ context.Context, _ int, name string, _ *telemetry.Registry) (float64, error) {
				np, err := perfmodel.Model(zoo.Build(name), cluster)
				if err != nil {
					return 0, err
				}
				rate, _ := gpu.TrainImagesPerSec(name, gpu.CuDNNR2)
				return np.TrainImagesPerSec / rate, nil
			})
		if err != nil {
			b.Fatal(err)
		}
		prod := 1.0
		for _, sp := range speedups {
			prod *= sp
		}
		geo = math.Pow(prod, 1.0/float64(len(gpu.Networks)))
	}
	b.ReportMetric(geo, "cudnn-r2-speedup-x")
}

// BenchmarkFig19_AlexNetUtilization regenerates the AlexNet utilization
// cascade and reports the final overall utilization.
func BenchmarkFig19_AlexNetUtilization(b *testing.B) {
	var util float64
	net := zoo.AlexNet()
	node := arch.Baseline()
	for i := 0; i < b.N; i++ {
		np, err := perfmodel.Model(net, node)
		if err != nil {
			b.Fatal(err)
		}
		util = np.Utilization
	}
	b.ReportMetric(util, "alexnet-util")
}

// BenchmarkFig20_PowerEfficiency reports the suite's geomean processing
// efficiency (paper: 331.7 GFLOPs/W).
func BenchmarkFig20_PowerEfficiency(b *testing.B) {
	node := arch.Baseline()
	var geo float64
	for i := 0; i < b.N; i++ {
		rows, err := report.ModelSuite(node)
		if err != nil {
			b.Fatal(err)
		}
		var s float64
		for _, r := range rows {
			s += math.Log(power.Average(r.Perf, node).Efficiency)
		}
		geo = math.Exp(s / float64(len(rows)))
	}
	b.ReportMetric(geo, "GFLOPs/W")
}

// BenchmarkFig21_LinkUtilization reports the comp-mem link geomean
// utilization (paper: 0.87).
func BenchmarkFig21_LinkUtilization(b *testing.B) {
	node := arch.Baseline()
	var geo float64
	for i := 0; i < b.N; i++ {
		rows, err := report.ModelSuite(node)
		if err != nil {
			b.Fatal(err)
		}
		var s float64
		for _, r := range rows {
			s += math.Log(r.Perf.Links.CompMem)
		}
		geo = math.Exp(s / float64(len(rows)))
	}
	b.ReportMetric(geo, "compmem-util")
}

// --- substrate micro-benchmarks ------------------------------------------

// BenchmarkSimulatorEval measures the functional simulator executing a
// compiled evaluation (cycles simulated per wall second).
func BenchmarkSimulatorEval(b *testing.B) {
	benchSimulator(b, false)
}

// BenchmarkSimulatorTrain measures a full compiled training iteration.
func BenchmarkSimulatorTrain(b *testing.B) {
	benchSimulator(b, true)
}

func benchSimulator(b *testing.B, training bool) {
	b.Helper()
	net := smallNet()
	chip := smallChip()
	e := scaledeep.NewExecutor(net, 3)
	e.NoBias = true
	rng := tensor.NewRNG(5)
	inputs := []*tensor.Tensor{tensor.New(3, 12, 12)}
	rng.FillUniform(inputs[0], 1)
	golden := []*tensor.Tensor{tensor.New(10)}
	rng.FillUniform(golden[0], 1)
	opts := compiler.Options{Minibatch: 1, Training: training, LR: 0.0625}
	c, err := compiler.Compile(net, chip, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles sim.Cycle
	for i := 0; i < b.N; i++ {
		m := sim.NewMachine(chip, arch.Single, true)
		if err := c.Install(m); err != nil {
			b.Fatal(err)
		}
		if err := c.LoadWeights(m, e); err != nil {
			b.Fatal(err)
		}
		if err := c.LoadInputs(m, inputs); err != nil {
			b.Fatal(err)
		}
		if training {
			if err := c.LoadGolden(m, golden); err != nil {
				b.Fatal(err)
			}
		}
		st, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkTensorConv2D measures the conv substrate on a mid-CONV-layer
// shaped workload.
func BenchmarkTensorConv2D(b *testing.B) {
	rng := tensor.NewRNG(1)
	in := tensor.New(64, 28, 28)
	w := tensor.New(64, 64, 3, 3)
	rng.FillUniform(in, 1)
	rng.FillUniform(w, 1)
	p := tensor.ConvParams{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tensor.Conv2D(in, w, nil, p)
		if out.Len() == 0 {
			b.Fatal("empty")
		}
	}
	flops := 2.0 * 64 * 64 * 9 * 28 * 28
	b.ReportMetric(flops, "FLOPs/op")
}

// BenchmarkExecutorTrainingStep measures one software FP+BP+WG iteration.
func BenchmarkExecutorTrainingStep(b *testing.B) {
	net := smallNet()
	e := scaledeep.NewExecutor(net, 3)
	e.NoBias = true
	rng := tensor.NewRNG(5)
	img := tensor.New(3, 12, 12)
	rng.FillUniform(img, 1)
	grad := tensor.New(10)
	rng.FillUniform(grad, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Forward(img)
		e.BackwardFrom(grad)
		e.Step(0.01, 1)
	}
}

func smallNet() *dnn.Network {
	b := dnn.NewBuilder("benchnet")
	in := b.Input(3, 12, 12)
	c1 := b.Conv(in, "c1", 6, 3, 1, 1, tensor.ActReLU)
	p1 := b.MaxPool(c1, "s1", 2, 2)
	c2 := b.Conv(p1, "c2", 8, 3, 1, 1, tensor.ActTanh)
	f1 := b.FC(c2, "f1", 10, tensor.ActNone)
	_ = f1
	return b.Build()
}

func smallChip() arch.ChipConfig {
	c := arch.Baseline().Cluster.Conv
	c.Rows, c.Cols = 3, 8
	return c
}

// --- design-choice ablations (DESIGN.md §3) --------------------------------

// BenchmarkAblation_Winograd quantifies the headroom §6.1 identifies:
// Winograd F(2×2,3×3) on the eligible conv layers of VGG-D.
func BenchmarkAblation_Winograd(b *testing.B) {
	node := arch.Baseline()
	net := zoo.VGG('D')
	var speedup float64
	for i := 0; i < b.N; i++ {
		base, err := perfmodel.Model(net, node)
		if err != nil {
			b.Fatal(err)
		}
		wino, err := perfmodel.ModelWith(net, node, perfmodel.Options{Winograd: true})
		if err != nil {
			b.Fatal(err)
		}
		speedup = wino.TrainImagesPerSec / base.TrainImagesPerSec
	}
	b.ReportMetric(speedup, "winograd-x")
}

// BenchmarkAblation_SubColumnAllocation quantifies §6.1's stated future
// work: sub-column layer allocation removes the column-quantization stage
// of the utilization cascade. Each network's base-vs-subcolumn pair is one
// sweep-engine job.
func BenchmarkAblation_SubColumnAllocation(b *testing.B) {
	node := arch.Baseline()
	var gain float64
	for i := 0; i < b.N; i++ {
		ratios, err := sweep.Map(context.Background(), zoo.Names, sweep.Options{},
			func(_ context.Context, _ int, name string, _ *telemetry.Registry) (float64, error) {
				base, err := perfmodel.Model(zoo.Build(name), node)
				if err != nil {
					return 0, err
				}
				sub, err := perfmodel.ModelWith(zoo.Build(name), node, perfmodel.Options{SubColumnAllocation: true})
				if err != nil {
					return 0, err
				}
				return sub.TrainImagesPerSec / base.TrainImagesPerSec, nil
			})
		if err != nil {
			b.Fatal(err)
		}
		prod := 1.0
		for _, r := range ratios {
			prod *= r
		}
		gain = math.Pow(prod, 1.0/float64(len(zoo.Names)))
	}
	b.ReportMetric(gain, "subcol-geomean-x")
}

// BenchmarkAblation_Heterogeneity quantifies the §7 argument against
// homogeneous designs: without FcLayer chips, FC-heavy OverFeat becomes
// memory-bandwidth bound.
func BenchmarkAblation_Heterogeneity(b *testing.B) {
	node := arch.Baseline()
	net := zoo.OverFeatFast()
	var slowdown float64
	for i := 0; i < b.N; i++ {
		base, err := perfmodel.Model(net, node)
		if err != nil {
			b.Fatal(err)
		}
		hom, err := perfmodel.ModelWith(net, node, perfmodel.Options{Homogeneous: true})
		if err != nil {
			b.Fatal(err)
		}
		slowdown = base.TrainImagesPerSec / hom.TrainImagesPerSec
	}
	b.ReportMetric(slowdown, "hetero-advantage-x")
}

// BenchmarkHalfPrecisionSim measures the FP16 functional datapath on a
// compiled evaluation.
func BenchmarkHalfPrecisionSim(b *testing.B) {
	net := smallNet()
	chip := smallChip()
	e := scaledeep.NewExecutor(net, 3)
	e.NoBias = true
	rng := tensor.NewRNG(5)
	inputs := []*tensor.Tensor{tensor.New(3, 12, 12)}
	rng.FillUniform(inputs[0], 1)
	c, err := compiler.Compile(net, chip, compiler.Options{Minibatch: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := sim.NewMachine(chip, arch.Half, true)
		if err := c.Install(m); err != nil {
			b.Fatal(err)
		}
		if err := c.LoadWeights(m, e); err != nil {
			b.Fatal(err)
		}
		if err := c.LoadInputs(m, inputs); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTensorWinograd measures the F(2×2,3×3) substrate vs direct
// convolution shape.
func BenchmarkTensorWinograd(b *testing.B) {
	rng := tensor.NewRNG(1)
	in := tensor.New(64, 28, 28)
	w := tensor.New(64, 64, 3, 3)
	rng.FillUniform(in, 1)
	rng.FillUniform(w, 1)
	p := tensor.ConvParams{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tensor.Conv2DWinograd(in, w, nil, p)
		if out.Len() == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkClusterMinibatchBoundary measures the §3.3 node-level collective
// (wheel accumulation + ring all-reduce + weight distribution) for an
// AlexNet-sized CONV weight set, reporting the boundary's cycle cost.
func BenchmarkClusterMinibatchBoundary(b *testing.B) {
	const convWeights = 2_300_000 // AlexNet CONV parameters
	// One fresh-fabric run gives the simulated cycle cost; the timed loop
	// reuses the fabric to measure the collective's wall cost.
	cycles := cluster.NewNode(arch.Baseline(), convWeights, 1000).MinibatchBoundary(0.01)
	n := cluster.NewNode(arch.Baseline(), convWeights, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.MinibatchBoundary(0.01)
	}
	b.ReportMetric(float64(cycles), "boundary-cycles")
	b.ReportMetric(float64(cycles)/600e3, "boundary-ms")
}

// BenchmarkTensorConv2DIm2col measures the matmul-lowered convolution (the
// 2D-PE array's dot-product formulation) against the direct loop.
func BenchmarkTensorConv2DIm2col(b *testing.B) {
	rng := tensor.NewRNG(1)
	in := tensor.New(64, 28, 28)
	w := tensor.New(64, 64, 3, 3)
	rng.FillUniform(in, 1)
	rng.FillUniform(w, 1)
	p := tensor.ConvParams{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tensor.Conv2DIm2col(in, w, nil, p)
		if out.Len() == 0 {
			b.Fatal("empty")
		}
	}
}
