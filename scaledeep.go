// Package scaledeep is a from-scratch reproduction of the ScaleDeep system
// (Venkataramani et al., ISCA 2017): a dense, scalable server architecture
// for training and evaluating deep neural networks.
//
// The package is a facade over the implementation packages:
//
//   - network construction and the 11-benchmark model zoo (internal/dnn,
//     internal/zoo) with per-layer compute/data analytics (§2.3);
//   - the micro-architectural configuration hierarchy of Fig. 14
//     (internal/arch): CompHeavy/MemHeavy tiles, ConvLayer/FcLayer chips,
//     the wheel of chips per cluster and the ring of clusters;
//   - the 28-instruction ScaleDeep ISA (internal/isa) and the two-phase
//     compiler of §4 (internal/compiler);
//   - the functional + timing simulator with hardware data-flow trackers
//     (internal/sim, §3.2.4);
//   - the analytic performance, power and GPU-baseline models that
//     regenerate the evaluation figures (internal/perfmodel,
//     internal/power, internal/gpu, internal/report).
//
// Quick start:
//
//	b := scaledeep.NewBuilder("mynet")
//	in := b.Input(3, 32, 32)
//	c1 := b.Conv(in, "c1", 16, 3, 1, 1, scaledeep.ReLU)
//	p1 := b.MaxPool(c1, "p1", 2, 2)
//	f1 := b.FC(p1, "f1", 10, scaledeep.NoAct)
//	net := b.Softmax(f1).Build()
//
//	perf, _ := scaledeep.Model(net, scaledeep.Baseline())
//	fmt.Printf("%.0f training images/s\n", perf.TrainImagesPerSec)
package scaledeep

import (
	"io"

	"scaledeep/internal/arch"
	"scaledeep/internal/cluster"
	"scaledeep/internal/compiler"
	"scaledeep/internal/dnn"
	"scaledeep/internal/perfmodel"
	"scaledeep/internal/power"
	"scaledeep/internal/sim"
	"scaledeep/internal/tensor"
	"scaledeep/internal/zoo"
)

// Network construction.
type (
	// Network is a DNN topology: a validated DAG of typed layers.
	Network = dnn.Network
	// Builder constructs networks layer by layer with shape inference.
	Builder = dnn.Builder
	// Layer is one node of a network.
	Layer = dnn.Layer
	// Tensor is a dense float32 tensor.
	Tensor = tensor.Tensor
	// Executor trains and evaluates a network in software (the golden
	// reference the hardware path is validated against).
	Executor = dnn.Executor
)

// Activation kinds for Conv/FC layers.
const (
	NoAct   = tensor.ActNone
	ReLU    = tensor.ActReLU
	Tanh    = tensor.ActTanh
	Sigmoid = tensor.ActSigmoid
)

// NewBuilder starts a network definition.
func NewBuilder(name string) *Builder { return dnn.NewBuilder(name) }

// NewExecutor allocates a software executor with deterministic
// pseudo-random initial weights.
func NewExecutor(net *Network, seed uint64) *Executor { return dnn.NewExecutor(net, seed) }

// NewTensor allocates a zero tensor.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// SaveWeights serializes an executor's trained parameters (with checksum).
func SaveWeights(w io.Writer, e *Executor) error { return dnn.SaveWeights(w, e) }

// LoadWeights restores parameters saved by SaveWeights into an executor of
// the same network.
func LoadWeights(r io.Reader, e *Executor) error { return dnn.LoadWeights(r, e) }

// Benchmarks lists the 11 evaluation networks (Fig. 15).
var Benchmarks = zoo.Names

// Benchmark builds one of the paper's 11 benchmark networks by name.
func Benchmark(name string) *Network { return zoo.Build(name) }

// Architecture configuration.
type (
	// NodeConfig describes a full ScaleDeep node (Fig. 14).
	NodeConfig = arch.NodeConfig
	// ChipConfig describes one ConvLayer or FcLayer chip.
	ChipConfig = arch.ChipConfig
)

// Baseline returns the single-precision node of Fig. 14: 7032 tiles,
// 680 TFLOPs peak at 1.4 kW.
func Baseline() NodeConfig { return arch.Baseline() }

// HalfPrecision returns the FP16 design of Fig. 17 (~1.35 PFLOPs peak at
// roughly the same power).
func HalfPrecision() NodeConfig { return arch.HalfPrecision() }

// Performance modeling.
type (
	// Performance is the analytic model's output for one network.
	Performance = perfmodel.NetworkPerf
	// PowerBreakdown is the average-power result of the power model.
	PowerBreakdown = power.Breakdown
)

// Model evaluates a network's training/evaluation throughput, utilization
// and link traffic on a node design (Figs. 16, 17, 19, 21).
func Model(net *Network, node NodeConfig) (*Performance, error) {
	return perfmodel.Model(net, node)
}

// ModelOptions select model variants for ablation studies: Winograd
// convolutions, sub-column layer allocation (the paper's stated future
// work), and a homogeneous (no FcLayer chips) design point.
type ModelOptions = perfmodel.Options

// ModelWith evaluates a network under ablation options.
func ModelWith(net *Network, node NodeConfig, opts ModelOptions) (*Performance, error) {
	return perfmodel.ModelWith(net, node, opts)
}

// AveragePower computes the training-time power breakdown and processing
// efficiency (Fig. 20).
func AveragePower(perf *Performance, node NodeConfig) PowerBreakdown {
	return power.Average(perf, node)
}

// Node-level fabric (§3.3): the wheel of ConvLayer chips per cluster and
// the ring of clusters, with the minibatch-boundary collectives (gradient
// accumulation over arcs, ring all-reduce, weight distribution).
type Fabric = cluster.Node

// NewFabric builds the wheel-ring fabric for a node configuration, holding
// convWeights conv parameters per chip and fcWeights FC parameters split
// across clusters under model parallelism.
func NewFabric(cfg NodeConfig, convWeights, fcWeights int) *Fabric {
	return cluster.NewNode(cfg, convWeights, fcWeights)
}

// Compilation and functional simulation.
type (
	// Compiled is the compiler's output: per-tile ScaleDeep programs, the
	// data-flow tracker manifest, and harness bindings.
	Compiled = compiler.Compiled
	// CompileOptions configure code generation.
	CompileOptions = compiler.Options
	// Machine is the functional + timing chip simulator.
	Machine = sim.Machine
	// SimStats are one simulation run's statistics.
	SimStats = sim.Stats
)

// Compile maps a (linear-chain) network onto one chip and generates the
// per-tile ScaleDeep programs (Fig. 13's full pipeline).
func Compile(net *Network, chip ChipConfig, opts CompileOptions) (*Compiled, error) {
	return compiler.Compile(net, chip, opts)
}

// NewMachine builds a chip simulator. Functional mode carries real data
// through the scratchpads; otherwise the run is timing-only.
func NewMachine(chip ChipConfig, functional bool) *Machine {
	return sim.NewMachine(chip, arch.Single, functional)
}

// Simulate is the one-call harness: compile the network, install it on a
// functional simulator, load weights from the executor and the given
// minibatch, run to completion, and return the machine (for reading
// outputs and trained weights) plus the run statistics.
func Simulate(net *Network, chip ChipConfig, opts CompileOptions,
	e *Executor, inputs, golden []*Tensor) (*Compiled, *Machine, SimStats, error) {
	c, err := Compile(net, chip, opts)
	if err != nil {
		return nil, nil, SimStats{}, err
	}
	m := NewMachine(chip, true)
	if err := c.Install(m); err != nil {
		return nil, nil, SimStats{}, err
	}
	if err := c.LoadWeights(m, e); err != nil {
		return nil, nil, SimStats{}, err
	}
	if err := c.LoadInputs(m, inputs); err != nil {
		return nil, nil, SimStats{}, err
	}
	if opts.Training {
		if err := c.LoadGolden(m, golden); err != nil {
			return nil, nil, SimStats{}, err
		}
	}
	st, err := m.Run()
	if err != nil {
		return nil, nil, SimStats{}, err
	}
	return c, m, st, nil
}
